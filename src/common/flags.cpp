#include "common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "common/check.h"

namespace tprm {
namespace {

bool looksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form, unless the next token is itself a flag (then this
    // is a bare boolean).
    if (i + 1 < argc && !looksLikeFlag(argv[i + 1])) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::getString(const std::string& name,
                             const std::string& defaultValue) const {
  const auto it = values_.find(name);
  return it == values_.end() ? defaultValue : it->second;
}

std::int64_t Flags::getInt(const std::string& name,
                           std::int64_t defaultValue) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return defaultValue;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    TPRM_CHECK(pos == it->second.size(), "trailing garbage in integer flag");
    return v;
  } catch (const std::exception&) {
    TPRM_CHECK(false, ("flag --" + name + " is not an integer").c_str());
  }
  return defaultValue;  // unreachable
}

double Flags::getDouble(const std::string& name, double defaultValue) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return defaultValue;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    TPRM_CHECK(pos == it->second.size(), "trailing garbage in double flag");
    return v;
  } catch (const std::exception&) {
    TPRM_CHECK(false, ("flag --" + name + " is not a number").c_str());
  }
  return defaultValue;  // unreachable
}

bool Flags::getBool(const std::string& name, bool defaultValue) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return defaultValue;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  TPRM_CHECK(false, ("flag --" + name + " is not a boolean").c_str());
  return defaultValue;  // unreachable
}

std::vector<std::string> Flags::unknownAgainst(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace tprm
