#include "common/time.h"

#include <cmath>

#include "common/check.h"

namespace tprm {

Time ticksFromUnits(double units) {
  TPRM_CHECK(std::isfinite(units), "time must be finite");
  const double scaled = units * static_cast<double>(kTicksPerUnit);
  TPRM_CHECK(std::abs(scaled) < static_cast<double>(kTimeInfinity),
             "time overflows tick range");
  return static_cast<Time>(std::llround(scaled));
}

double unitsFromTicks(Time ticks) {
  return static_cast<double>(ticks) / static_cast<double>(kTicksPerUnit);
}

std::string formatTime(Time ticks) {
  const bool negative = ticks < 0;
  const Time abs = negative ? -ticks : ticks;
  const Time whole = abs / kTicksPerUnit;
  Time frac = abs % kTicksPerUnit;
  std::string out = negative ? "-" : "";
  out += std::to_string(whole);
  if (frac != 0) {
    // Emit exactly the significant fractional digits (base-10, 6 places).
    std::string digits(6, '0');
    Time scale = kTicksPerUnit / 10;
    for (int i = 0; i < 6; ++i) {
      digits[static_cast<std::size_t>(i)] =
          static_cast<char>('0' + (frac / scale));
      frac %= scale;
      scale /= 10;
    }
    while (!digits.empty() && digits.back() == '0') digits.pop_back();
    out += '.';
    out += digits;
  }
  return out;
}

}  // namespace tprm
