// Streaming statistics used by the simulator's metric pipeline and by the
// experiment harnesses to summarise repeated runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tprm {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel-combine safe).
  void merge(const StreamingStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

  /// Human-readable one-line summary, e.g. "n=10 mean=4.2 sd=0.3 [3.9, 4.8]".
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with out-of-range overflow buckets.
class Histogram {
 public:
  /// Creates `buckets` equal-width bins spanning [lo, hi).  Requires
  /// lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucketCount() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Linear-interpolated quantile estimate in [0, 1]; returns lo/hi bounds for
  /// q outside the recorded mass.  Requires at least one observation.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace tprm
