#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace tprm {

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

bool JsonValue::asBool() const {
  TPRM_CHECK(isBool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

double JsonValue::asNumber() const {
  TPRM_CHECK(isNumber(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::asString() const {
  TPRM_CHECK(isString(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::asArray() const {
  TPRM_CHECK(isArray(), "JSON value is not an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::asObject() const {
  TPRM_CHECK(isObject(), "JSON value is not an object");
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!isObject()) return nullptr;
  const auto& object = std::get<Object>(value_);
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    // Integral values print without a fractional part.
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", d);
    out += buffer;
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    out += buffer;
  }
}

void appendIndent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent) const {
  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isNumber()) {
    appendNumber(out, asNumber());
  } else if (isString()) {
    appendEscaped(out, asString());
  } else if (isArray()) {
    const auto& array = asArray();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < array.size(); ++i) {
      appendIndent(out, indent + 1);
      array[i].dumpTo(out, indent + 1);
      if (i + 1 < array.size()) out += ',';
      out += '\n';
    }
    appendIndent(out, indent);
    out += ']';
  } else {
    const auto& object = asObject();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    std::size_t i = 0;
    for (const auto& [key, value] : object) {
      appendIndent(out, indent + 1);
      appendEscaped(out, key);
      out += ": ";
      value.dumpTo(out, indent + 1);
      if (++i < object.size()) out += ',';
      out += '\n';
    }
    appendIndent(out, indent);
    out += '}';
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dumpTo(out, 0);
  return out;
}

void JsonValue::dumpCompactTo(std::string& out) const {
  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isNumber()) {
    appendNumber(out, asNumber());
  } else if (isString()) {
    appendEscaped(out, asString());
  } else if (isArray()) {
    out += '[';
    const auto& array = asArray();
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out += ',';
      array[i].dumpCompactTo(out);
    }
    out += ']';
  } else {
    out += '{';
    std::size_t i = 0;
    for (const auto& [key, value] : asObject()) {
      if (i++ > 0) out += ',';
      appendEscaped(out, key);
      out += ':';
      value.dumpCompactTo(out);
    }
    out += '}';
  }
}

std::string JsonValue::dumpCompact() const {
  std::string out;
  dumpCompactTo(out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  JsonParseResult run() {
    skipWhitespace();
    JsonValue value;
    if (!parseValue(value)) return failure();
    skipWhitespace();
    if (pos_ != text_.size()) {
      error_ = "trailing garbage after document";
      return failure();
    }
    JsonParseResult result;
    result.value = std::move(value);
    return result;
  }

 private:
  JsonParseResult failure() {
    JsonParseResult result;
    result.error = error_.empty() ? "parse error" : error_;
    result.errorOffset = pos_;
    return result;
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    error_ = what;
    return false;
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consumeLiteral(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool parseValue(JsonValue& out) {
    if (atEnd()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': {
        std::string s;
        if (!parseString(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!consumeLiteral("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!consumeLiteral("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!consumeLiteral("null")) return false;
        out = JsonValue(nullptr);
        return true;
      default: return parseNumber(out);
    }
  }

  bool parseObject(JsonValue& out) {
    ++pos_;  // '{'
    if (++depth_ > options_.maxDepth) return fail("nesting too deep");
    JsonValue::Object object;
    skipWhitespace();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      --depth_;
      out = JsonValue(std::move(object));
      return true;
    }
    for (;;) {
      skipWhitespace();
      if (atEnd() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parseString(key)) return false;
      skipWhitespace();
      if (atEnd() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skipWhitespace();
      JsonValue value;
      if (!parseValue(value)) return false;
      object[std::move(key)] = std::move(value);
      skipWhitespace();
      if (atEnd()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        out = JsonValue(std::move(object));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue& out) {
    ++pos_;  // '['
    if (++depth_ > options_.maxDepth) return fail("nesting too deep");
    JsonValue::Array array;
    skipWhitespace();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      --depth_;
      out = JsonValue(std::move(array));
      return true;
    }
    for (;;) {
      skipWhitespace();
      JsonValue value;
      if (!parseValue(value)) return false;
      array.push_back(std::move(value));
      skipWhitespace();
      if (atEnd()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        out = JsonValue(std::move(array));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (!atEnd()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (atEnd()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode (basic multilingual plane only; surrogate pairs
          // are rejected to keep the implementation honest).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return fail("surrogate pairs are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (!atEnd() && peek() == '.') {
      ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("invalid number");
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      return fail("invalid number");
    }
    out = JsonValue(value);
    return true;
  }

  const std::string& text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parseJson(const std::string& text,
                          const JsonParseOptions& options) {
  return Parser(text, options).run();
}

}  // namespace tprm
