#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace tprm {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const { return count_ == 0 ? 0.0 : min_; }

double StreamingStats::max() const { return count_ == 0 ? 0.0 : max_; }

std::string StreamingStats::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev() << " ["
     << min() << ", " << max() << "]";
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  TPRM_CHECK(lo < hi, "Histogram requires lo < hi");
  TPRM_CHECK(buckets >= 1, "Histogram requires at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge case
  ++counts_[idx];
}

double Histogram::quantile(double q) const {
  TPRM_CHECK(total_ > 0, "quantile of empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto mass = static_cast<double>(counts_[i]);
    if (cumulative + mass >= target && mass > 0) {
      const double frac = (target - cumulative) / mass;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cumulative += mass;
  }
  return hi_;
}

}  // namespace tprm
