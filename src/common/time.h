// Fixed-point simulation time for the TPRM library.
//
// The paper's evaluation (Section 5) manipulates task durations such as
// `t = 25` and `t / alpha` with alpha in (0, 1]; deadlines divide by
// `(1 - laxity)`.  Representing these as floating point inside the scheduler
// would make hole coalescing and deadline comparisons depend on rounding
// noise, so all scheduler-facing time is an integer number of *ticks*.
// One paper time unit is `kTicksPerUnit` ticks; doubles appear only at the
// workload-generation boundary and are rounded exactly once.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace tprm {

/// Scheduler time in integer ticks.  Signed so that differences (slack,
/// laxity) are representable without casts.
using Time = std::int64_t;

/// Number of ticks in one paper time unit (see Section 5.3: `t = 25` units).
/// 1e6 gives microsecond-like resolution against unit-scale quantities and
/// still leaves ~9e12 units of headroom in 64 bits.
inline constexpr Time kTicksPerUnit = 1'000'000;

/// Sentinel for "no deadline" / "unbounded horizon".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

/// Converts a paper-unit quantity (possibly fractional) to ticks, rounding to
/// nearest.  This is the *only* sanctioned double->Time conversion.
[[nodiscard]] Time ticksFromUnits(double units);

/// Converts ticks back to paper units (for reporting only).
[[nodiscard]] double unitsFromTicks(Time ticks);

/// Formats a tick count as a decimal unit string, e.g. "25", "6.25".
/// Trailing zeros in the fractional part are trimmed.
[[nodiscard]] std::string formatTime(Time ticks);

/// Half-open time interval [begin, end).  Empty iff begin >= end.
struct TimeInterval {
  Time begin = 0;
  Time end = 0;

  [[nodiscard]] constexpr Time length() const { return end - begin; }
  [[nodiscard]] constexpr bool empty() const { return begin >= end; }
  [[nodiscard]] constexpr bool contains(Time t) const {
    return t >= begin && t < end;
  }
  /// True iff the two half-open intervals share at least one tick.
  [[nodiscard]] constexpr bool overlaps(const TimeInterval& other) const {
    return begin < other.end && other.begin < end;
  }
  /// Intersection of two half-open intervals (possibly empty).
  [[nodiscard]] constexpr TimeInterval intersect(
      const TimeInterval& other) const {
    const Time b = begin > other.begin ? begin : other.begin;
    const Time e = end < other.end ? end : other.end;
    return TimeInterval{b, e};
  }
  constexpr bool operator==(const TimeInterval&) const = default;
};

}  // namespace tprm
