// Minimal JSON reader/writer (no external dependencies).
//
// Supports the JSON subset the library's serialization needs: objects,
// arrays, strings (with \" \\ \/ \b \f \n \r \t and \uXXXX escapes),
// numbers (doubles), booleans, and null.  Parsing is strict: trailing
// garbage, unterminated constructs, and invalid escapes are errors.
// Errors are reported with a byte offset rather than by aborting, so
// callers can reject malformed user files gracefully.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace tprm {

/// A parsed JSON value.  Objects preserve no duplicate keys (last wins) and
/// iterate in key order.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}                        // null
  JsonValue(std::nullptr_t) : value_(nullptr) {}          // NOLINT(runtime/explicit)
  JsonValue(bool b) : value_(b) {}                        // NOLINT(runtime/explicit)
  JsonValue(double d) : value_(d) {}                      // NOLINT(runtime/explicit)
  JsonValue(int i) : value_(static_cast<double>(i)) {}    // NOLINT(runtime/explicit)
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}    // NOLINT(runtime/explicit)
  JsonValue(std::string s) : value_(std::move(s)) {}      // NOLINT(runtime/explicit)
  JsonValue(Array a) : value_(std::move(a)) {}            // NOLINT(runtime/explicit)
  JsonValue(Object o) : value_(std::move(o)) {}           // NOLINT(runtime/explicit)

  [[nodiscard]] bool isNull() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool isBool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool isNumber() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool isString() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool isArray() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool isObject() const {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; abort on type mismatch (check first, or use the
  /// lookup helpers below which produce descriptive errors).
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] const Object& asObject() const;

  /// Object field lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Serialises with 2-space indentation and sorted keys (stable output).
  [[nodiscard]] std::string dump() const;

  /// Serialises without any whitespace (sorted keys).  One value per line:
  /// the JSON-lines form used by periodic metric snapshots.
  [[nodiscard]] std::string dumpCompact() const;

  bool operator==(const JsonValue& other) const = default;

 private:
  void dumpTo(std::string& out, int indent) const;
  void dumpCompactTo(std::string& out) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Parse outcome: a value or an error message with a byte offset.
struct JsonParseResult {
  std::optional<JsonValue> value;
  std::string error;       // empty on success
  std::size_t errorOffset = 0;

  [[nodiscard]] bool ok() const { return value.has_value(); }
};

/// Parser limits for untrusted input (wire frames, user files).  The depth
/// cap bounds the parser's recursion: without it a few kilobytes of "[[[["
/// can exhaust the stack.
struct JsonParseOptions {
  /// Maximum container nesting depth (top-level scalar = depth 0).
  int maxDepth = 64;
};

/// Parses a complete JSON document (rejects trailing garbage).
[[nodiscard]] JsonParseResult parseJson(const std::string& text,
                                        const JsonParseOptions& options = {});

}  // namespace tprm
