// Leveled, thread-safe logging.  Default level is Warn so library users see
// problems but simulations stay quiet; harnesses raise it with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace tprm {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that will be emitted.
void setLogLevel(LogLevel level);

/// Current global minimum level.
[[nodiscard]] LogLevel logLevel();

/// True iff `level` passes the global threshold (the TPRM_LOG gate).
[[nodiscard]] bool logEnabled(LogLevel level);

/// Emits one line to stderr if `level` passes the global threshold.
/// Thread-safe (single atomic write of the formatted line).
void logMessage(LogLevel level, const std::string& message);

namespace detail {

/// RAII line builder behind the TPRM_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { logMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a LogLine so the enabled branch of TPRM_LOG has type void,
/// matching the disabled branch of the conditional (glog's voidify trick).
struct LogVoidifier {
  // '&' binds looser than '<<', so the whole streamed chain is built (and
  // the line emitted by ~LogLine) before this no-op runs.
  void operator&(const LogLine&) const {}
};

}  // namespace detail
}  // namespace tprm

// Level-gated line builder.  The gate is checked BEFORE the LogLine (and
// its ostringstream) is constructed, so a suppressed statement evaluates
// none of its streamed operands: `TPRM_LOG(Debug) << expensive()` costs one
// atomic load when Debug is filtered out, and expensive() never runs.
#define TPRM_LOG(level)                              \
  !::tprm::logEnabled(::tprm::LogLevel::level)       \
      ? (void)0                                      \
      : ::tprm::detail::LogVoidifier() &             \
            ::tprm::detail::LogLine(::tprm::LogLevel::level)
