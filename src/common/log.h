// Leveled, thread-safe logging.  Default level is Warn so library users see
// problems but simulations stay quiet; harnesses raise it with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace tprm {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that will be emitted.
void setLogLevel(LogLevel level);

/// Current global minimum level.
[[nodiscard]] LogLevel logLevel();

/// Emits one line to stderr if `level` passes the global threshold.
/// Thread-safe (single atomic write of the formatted line).
void logMessage(LogLevel level, const std::string& message);

namespace detail {

/// RAII line builder behind the TPRM_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { logMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tprm

#define TPRM_LOG(level) ::tprm::detail::LogLine(::tprm::LogLevel::level)
