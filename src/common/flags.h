// Minimal command-line flag parser used by the benchmark/figure harnesses and
// examples.  Accepts `--name=value`, `--name value`, and bare `--name` for
// booleans; everything else is a positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tprm {

/// Parsed command line.  Lookup helpers return defaults for absent flags and
/// abort with a clear message on malformed values (harnesses are
/// developer-facing; failing fast beats silently running the wrong sweep).
class Flags {
 public:
  /// Parses argv (argv[0] is skipped).  Unknown flags are retained and can be
  /// enumerated with `unknownAgainst` for typo detection.
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string getString(const std::string& name,
                                      const std::string& defaultValue) const;
  [[nodiscard]] std::int64_t getInt(const std::string& name,
                                    std::int64_t defaultValue) const;
  [[nodiscard]] double getDouble(const std::string& name,
                                 double defaultValue) const;
  [[nodiscard]] bool getBool(const std::string& name, bool defaultValue) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Returns flags that are present but not in `known` (for usage errors).
  [[nodiscard]] std::vector<std::string> unknownAgainst(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tprm
