// Observability metrics for the negotiation stack.
//
// The paper's arbitrator is judged on admission ratio, utility, and
// negotiation latency (Section 5); this module makes those visible at
// runtime without perturbing them.  Three primitives:
//
//  * `Counter`  — monotonically increasing relaxed-atomic count;
//  * `Gauge`    — instantaneous level with a high-water mark;
//  * `HistogramMetric` — thread-safe latency/size distribution reusing
//    `common/stats` (fixed-width Histogram for quantiles plus
//    StreamingStats for exact mean/min/max).
//
// A `MetricsRegistry` owns named instances at stable addresses; components
// look their metrics up once (at attach time) and bump raw pointers on the
// hot path.  A snapshot serialises the whole registry through `common/json`.
//
// Overhead rules (load-bearing — the 13 deterministic fig/ablation
// harnesses must stay byte-identical):
//  * metrics NEVER feed back into decisions: counters observe, they are
//    not read by scheduling code;
//  * every hook is a nullable pointer; the disabled path is a single
//    null check (the harnesses never attach metrics, so they execute the
//    exact same instruction stream as before, minus that check);
//  * no wall-clock reads on the decision path — timestamps are taken only
//    by the service layer around queue/execute boundaries.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"
#include "common/stats.h"

namespace tprm::obs {

/// Monotonically increasing counter.  Relaxed atomics: totals are exact,
/// cross-counter ordering is not promised.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live sessions) with a high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    raiseMax(v);
  }
  void add(std::int64_t delta) {
    raiseMax(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  void raiseMax(std::int64_t candidate) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Thread-safe distribution: quantiles from a fixed-width Histogram,
/// exact mean/min/max from StreamingStats.  Values outside [lo, hi) land in
/// the histogram's overflow buckets but still update the exact stats, so
/// `max()` is trustworthy even when the range was guessed too small.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets);

  void record(double x);

  [[nodiscard]] std::uint64_t count() const;
  /// Linear-interpolated quantile; 0 when nothing was recorded.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// {"count", "mean", "min", "max", "p50", "p95", "p99"}.
  [[nodiscard]] JsonValue snapshot() const;

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
  StreamingStats stats_;
};

/// Thread-safe named metrics.  Registration is idempotent: the first call
/// creates, later calls return the same instance (histogram bounds from the
/// first registration win).  Returned references stay valid for the
/// registry's lifetime — components cache them as raw pointers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);

  /// {"counters": {name: n}, "gauges": {name: {"value","max"}},
  ///  "histograms": {name: {...}}}.  Keys sorted (std::map), so snapshots
  /// of the same registry state serialise identically.
  [[nodiscard]] JsonValue snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Standard latency histogram: microseconds over [0, 100ms) at 20us
/// resolution.  Outliers beyond 100ms keep exact mean/min/max via the
/// streaming stats and report p-quantiles clamped to the range edge.
HistogramMetric& latencyHistogram(MetricsRegistry& registry,
                                  const std::string& name);

// ---------------------------------------------------------------------------
// Hot-path hook bundles.  Each struct is a cache of registry lookups under a
// common prefix; decision-path components hold a nullable pointer to one and
// bump the (never-null) members when attached.
// ---------------------------------------------------------------------------

/// Counters for AvailabilityProfile's search machinery.
struct ProfileMetrics {
  Counter* fitProbes = nullptr;        // findEarliestFit calls
  Counter* fitHintHits = nullptr;      // probes resumed from a live hint
  Counter* fitHintMisses = nullptr;    // hint given but stale/foreign
  Counter* segmentsScanned = nullptr;  // step-function segments visited
  Counter* holesScanned = nullptr;     // maximal holes materialised
  Counter* trialRollbacks = nullptr;   // Trial rollbacks (incl. destructor)
  Counter* trialOpsUndone = nullptr;   // undo-log operations replayed
  Counter* trialCommits = nullptr;

  /// Registers "<prefix>.fit_probes" etc. and returns the bundle.
  static ProfileMetrics fromRegistry(MetricsRegistry& registry,
                                     const std::string& prefix);
};

/// Counters for the admission heuristics (chain and dag arbitrators).
struct ArbitratorMetrics {
  Counter* chainsEvaluated = nullptr;    // candidate chains/alternatives tried
  Counter* chainsSchedulable = nullptr;  // candidates that fit
  Counter* jobsAdmitted = nullptr;
  Counter* jobsRejected = nullptr;  // no schedulable candidate

  static ArbitratorMetrics fromRegistry(MetricsRegistry& registry,
                                        const std::string& prefix);
};

/// Counters for arbitrator-initiated renegotiation (the elastic model):
/// demotion/promotion commit counts, reshape outcomes, and the quality
/// traded per move.
struct ElasticMetrics {
  Counter* demotions = nullptr;        // committed victim shrinks
  Counter* promotions = nullptr;       // committed quality restorations
  Counter* reshapeAttempts = nullptr;  // rejected newcomers offered a reshape
  Counter* reshapeAdmitted = nullptr;  // reshapes that admitted the newcomer
  Counter* reshapeFailed = nullptr;    // reshapes rolled back entirely
  HistogramMetric* demotionQualityDelta = nullptr;   // quality lost per move
  HistogramMetric* promotionQualityDelta = nullptr;  // quality regained

  static ElasticMetrics fromRegistry(MetricsRegistry& registry,
                                     const std::string& prefix);
};

/// Everything the QoSArbitrator reports, including admit/reject/drop counts
/// by reason.  One bundle covers the arbitrator, its heuristic, its
/// availability profile, and the elastic reshape layer.
struct NegotiationMetrics {
  ProfileMetrics profile;
  ArbitratorMetrics arbitrator;
  ElasticMetrics elastic;
  Counter* negotiations = nullptr;  // submit() calls
  Counter* admitted = nullptr;
  Counter* rejectedNoChain = nullptr;  // reason: no schedulable chain
  Counter* cancels = nullptr;
  Counter* cancelMisses = nullptr;  // cancel of unknown/finished job
  Counter* resizes = nullptr;
  Counter* resizeKept = nullptr;
  Counter* resizeReconfigured = nullptr;
  /// Drop reasons during renegotiation (Section 3.1's resource-level change).
  Counter* droppedRunningNoFit = nullptr;   // running task lost its slot
  Counter* droppedInfeasible = nullptr;     // deadline became unmeetable
  Counter* droppedRenegotiation = nullptr;  // re-admission failed

  static NegotiationMetrics fromRegistry(MetricsRegistry& registry,
                                         const std::string& prefix);
};

/// Cross-shard counters for qos::ShardedArbitrator: the spill path (job
/// rejected by its home shard offered to the emptiest other shard) and the
/// capacity rebalancer.  Per-shard negotiation counters live in one
/// NegotiationMetrics bundle per shard; these count only the events that
/// span shards.
struct ShardedMetrics {
  Counter* spillAttempts = nullptr;  // spill candidate submits actually run
  Counter* spillAdmitted = nullptr;  // spill offers that landed
  /// Spill scans where no candidate submit ran (the chosen shard could not
  /// fit any chain of the spec by width — a guaranteed rejection).
  Counter* spillNoCandidate = nullptr;
  Counter* rebalanceChecks = nullptr;  // rebalance() invocations
  Counter* rebalanceMoves = nullptr;   // invocations that moved processors
  Counter* rebalanceProcessorsMoved = nullptr;
  /// Cross-shard gang admission (two-phase trial reserve of width fragments
  /// on several shards; see qos::ShardedArbitrator).
  Counter* gangAttempts = nullptr;  // gang-eligible placements attempted
  Counter* gangAdmitted = nullptr;  // gangs committed on every shard
  Counter* gangRollbacks = nullptr;  // phase-1 reserves rolled back
  Counter* gangFragmentsPlaced = nullptr;  // fragments committed, over gangs

  static ShardedMetrics fromRegistry(MetricsRegistry& registry,
                                     const std::string& prefix);
};

}  // namespace tprm::obs
