#include "obs/trace.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace tprm::obs {

std::int64_t monotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  TPRM_CHECK(capacity >= 1, "TraceRing needs capacity >= 1");
  ring_.reserve(capacity);
}

std::uint64_t TraceRing::record(TraceSpan span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  span.seq = next_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[static_cast<std::size_t>(next_ % capacity_)] = std::move(span);
  }
  return next_++;
}

std::size_t TraceRing::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceRing::totalRecorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_;
}

std::vector<TraceSpan> TraceRing::recent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: storage order is age order
  } else {
    // Oldest span sits at the next eviction slot.
    const std::size_t head = static_cast<std::size_t>(next_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

JsonValue TraceRing::snapshot() const {
  JsonValue::Array spans;
  for (const auto& span : recent()) {
    JsonValue::Object s;
    s["seq"] = static_cast<std::int64_t>(span.seq);
    s["name"] = span.name;
    s["request_id"] = static_cast<std::int64_t>(span.requestId);
    s["arrival_seq"] = static_cast<std::int64_t>(span.arrivalSeq);
    s["job_id"] = static_cast<std::int64_t>(span.jobId);
    s["ok"] = span.ok;
    s["queue_wait_us"] = span.queueWaitUs();
    s["execute_us"] = span.executeUs();
    s["detail"] = span.detail;
    spans.push_back(JsonValue(std::move(s)));
  }
  return JsonValue(std::move(spans));
}

}  // namespace tprm::obs
