// Lightweight trace spans for recent negotiations.
//
// One `TraceSpan` records the life of a command through the service:
// queued (session thread handed it to the command queue), started
// (arbitrator thread picked it up), ended (decision made).  Timestamps are
// monotonic nanoseconds (steady clock), so queue-wait and execute durations
// are immune to wall-clock jumps.  Spans live in a bounded ring buffer —
// the newest `capacity` negotiations are inspectable at any time (SIGUSR1
// dump, --metrics-out snapshots) with O(capacity) memory, no matter how
// long the daemon has been up.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace tprm::obs {

/// Monotonic timestamp in nanoseconds (std::chrono::steady_clock).
[[nodiscard]] std::int64_t monotonicNanos();

struct TraceSpan {
  /// Ring-assigned sequence number (monotonic across evictions).
  std::uint64_t seq = 0;
  /// Command name, e.g. "NEGOTIATE".
  std::string name;
  std::int64_t queuedNs = 0;
  std::int64_t startNs = 0;
  std::int64_t endNs = 0;
  std::uint64_t requestId = 0;
  std::uint64_t arrivalSeq = 0;
  /// Job id for negotiations (0 otherwise).
  std::uint64_t jobId = 0;
  /// Negotiations: admitted.  Other commands: executed without error.
  bool ok = false;
  /// Free-form decision detail, e.g. "chain=1 quality=0.700".
  std::string detail;

  [[nodiscard]] double queueWaitUs() const {
    return static_cast<double>(startNs - queuedNs) / 1'000.0;
  }
  [[nodiscard]] double executeUs() const {
    return static_cast<double>(endNs - startNs) / 1'000.0;
  }
};

/// Bounded, thread-safe ring of the most recent spans.
class TraceRing {
 public:
  /// `capacity` >= 1 spans are retained (older ones are evicted in order).
  explicit TraceRing(std::size_t capacity);

  /// Stamps `span.seq` and stores it, evicting the oldest span if full.
  /// Returns the assigned sequence number.
  std::uint64_t record(TraceSpan span);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Spans currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Spans ever recorded (>= size()).
  [[nodiscard]] std::uint64_t totalRecorded() const;

  /// Retained spans, oldest first.
  [[nodiscard]] std::vector<TraceSpan> recent() const;

  /// JSON array of retained spans, oldest first; each element carries
  /// {"seq","name","request_id","arrival_seq","job_id","ok",
  ///  "queue_wait_us","execute_us","detail"}.
  [[nodiscard]] JsonValue snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> ring_;  // ring_[next_ % capacity_] is the eviction slot
  std::uint64_t next_ = 0;       // == totalRecorded
};

}  // namespace tprm::obs
