#include "obs/metrics.h"

namespace tprm::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t buckets)
    : histogram_(lo, hi, buckets) {}

void HistogramMetric::record(double x) {
  const std::lock_guard<std::mutex> lock(mutex_);
  histogram_.add(x);
  stats_.add(x);
}

std::uint64_t HistogramMetric::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histogram_.total();
}

double HistogramMetric::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (histogram_.total() == 0) return 0.0;
  return histogram_.quantile(q);
}

double HistogramMetric::mean() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_.mean();
}

double HistogramMetric::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_.min();
}

double HistogramMetric::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_.max();
}

JsonValue HistogramMetric::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonValue::Object out;
  out["count"] = static_cast<std::int64_t>(histogram_.total());
  out["mean"] = stats_.mean();
  out["min"] = stats_.min();
  out["max"] = stats_.max();
  const bool empty = histogram_.total() == 0;
  out["p50"] = empty ? 0.0 : histogram_.quantile(0.50);
  out["p95"] = empty ? 0.0 : histogram_.quantile(0.95);
  out["p99"] = empty ? 0.0 : histogram_.quantile(0.99);
  return JsonValue(std::move(out));
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t buckets) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  return *slot;
}

JsonValue MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonValue::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = static_cast<std::int64_t>(counter->value());
  }
  JsonValue::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    JsonValue::Object g;
    g["value"] = gauge->value();
    g["max"] = gauge->max();
    gauges[name] = JsonValue(std::move(g));
  }
  JsonValue::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram->snapshot();
  }
  JsonValue::Object out;
  out["counters"] = JsonValue(std::move(counters));
  out["gauges"] = JsonValue(std::move(gauges));
  out["histograms"] = JsonValue(std::move(histograms));
  return JsonValue(std::move(out));
}

HistogramMetric& latencyHistogram(MetricsRegistry& registry,
                                  const std::string& name) {
  return registry.histogram(name, 0.0, 100'000.0, 5'000);
}

ProfileMetrics ProfileMetrics::fromRegistry(MetricsRegistry& registry,
                                            const std::string& prefix) {
  ProfileMetrics m;
  m.fitProbes = &registry.counter(prefix + ".fit_probes");
  m.fitHintHits = &registry.counter(prefix + ".fit_hint_hits");
  m.fitHintMisses = &registry.counter(prefix + ".fit_hint_misses");
  m.segmentsScanned = &registry.counter(prefix + ".segments_scanned");
  m.holesScanned = &registry.counter(prefix + ".holes_scanned");
  m.trialRollbacks = &registry.counter(prefix + ".trial_rollbacks");
  m.trialOpsUndone = &registry.counter(prefix + ".trial_ops_undone");
  m.trialCommits = &registry.counter(prefix + ".trial_commits");
  return m;
}

ArbitratorMetrics ArbitratorMetrics::fromRegistry(MetricsRegistry& registry,
                                                  const std::string& prefix) {
  ArbitratorMetrics m;
  m.chainsEvaluated = &registry.counter(prefix + ".chains_evaluated");
  m.chainsSchedulable = &registry.counter(prefix + ".chains_schedulable");
  m.jobsAdmitted = &registry.counter(prefix + ".jobs_admitted");
  m.jobsRejected = &registry.counter(prefix + ".jobs_rejected");
  return m;
}

ElasticMetrics ElasticMetrics::fromRegistry(MetricsRegistry& registry,
                                            const std::string& prefix) {
  ElasticMetrics m;
  m.demotions = &registry.counter(prefix + ".demotions");
  m.promotions = &registry.counter(prefix + ".promotions");
  m.reshapeAttempts = &registry.counter(prefix + ".reshape_attempts");
  m.reshapeAdmitted = &registry.counter(prefix + ".reshape_admitted");
  m.reshapeFailed = &registry.counter(prefix + ".reshape_failed");
  m.demotionQualityDelta =
      &registry.histogram(prefix + ".demotion_quality_delta", 0.0, 1.0, 100);
  m.promotionQualityDelta =
      &registry.histogram(prefix + ".promotion_quality_delta", 0.0, 1.0, 100);
  return m;
}

NegotiationMetrics NegotiationMetrics::fromRegistry(MetricsRegistry& registry,
                                                    const std::string& prefix) {
  NegotiationMetrics m;
  m.profile = ProfileMetrics::fromRegistry(registry, prefix + ".profile");
  m.arbitrator =
      ArbitratorMetrics::fromRegistry(registry, prefix + ".heuristic");
  m.elastic = ElasticMetrics::fromRegistry(registry, prefix + ".elastic");
  m.negotiations = &registry.counter(prefix + ".negotiations");
  m.admitted = &registry.counter(prefix + ".admitted");
  m.rejectedNoChain = &registry.counter(prefix + ".rejected_no_chain");
  m.cancels = &registry.counter(prefix + ".cancels");
  m.cancelMisses = &registry.counter(prefix + ".cancel_misses");
  m.resizes = &registry.counter(prefix + ".resizes");
  m.resizeKept = &registry.counter(prefix + ".resize_kept");
  m.resizeReconfigured = &registry.counter(prefix + ".resize_reconfigured");
  m.droppedRunningNoFit =
      &registry.counter(prefix + ".dropped_running_no_fit");
  m.droppedInfeasible = &registry.counter(prefix + ".dropped_infeasible");
  m.droppedRenegotiation =
      &registry.counter(prefix + ".dropped_renegotiation");
  return m;
}

ShardedMetrics ShardedMetrics::fromRegistry(MetricsRegistry& registry,
                                            const std::string& prefix) {
  ShardedMetrics m;
  m.spillAttempts = &registry.counter(prefix + ".spill_attempts");
  m.spillAdmitted = &registry.counter(prefix + ".spill_admitted");
  m.spillNoCandidate = &registry.counter(prefix + ".spill_no_candidate");
  m.rebalanceChecks = &registry.counter(prefix + ".rebalance_checks");
  m.rebalanceMoves = &registry.counter(prefix + ".rebalance_moves");
  m.rebalanceProcessorsMoved =
      &registry.counter(prefix + ".rebalance_processors_moved");
  m.gangAttempts = &registry.counter(prefix + ".gang_attempts");
  m.gangAdmitted = &registry.counter(prefix + ".gang_admitted");
  m.gangRollbacks = &registry.counter(prefix + ".gang_rollbacks");
  m.gangFragmentsPlaced =
      &registry.counter(prefix + ".gang_fragments_placed");
  return m;
}

}  // namespace tprm::obs
