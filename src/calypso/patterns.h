// Convenience parallel patterns over the Calypso runtime.
//
// The raw programming model (ParallelStep + routine) mirrors the paper's
// language; these helpers capture the three idioms every Calypso program in
// this repository uses, with CREW discipline built in:
//   * parallelFor   — partition an index range over W tasks;
//   * parallelMap   — fill a SharedArray element-wise;
//   * parallelReduce— per-task partials combined sequentially at step end.
// All of them are deterministic for deterministic bodies regardless of the
// worker count (malleability) and remain correct under eager re-execution
// (bodies must stay idempotent: they see pre-step state only).
#pragma once

#include <functional>

#include "calypso/runtime.h"

namespace tprm::calypso {

/// Runs `body(ctx, begin, end)` over a partition of [0, total) into `tasks`
/// near-equal contiguous chunks, one per routine instance.
/// `body` must follow CREW rules (buffered writes via ctx only).
template <typename Body>
StepStats parallelFor(Runtime& runtime, std::size_t total, int tasks,
                      Body body) {
  TPRM_CHECK(tasks >= 1, "parallelFor needs at least one task");
  ParallelStep step;
  step.routine(tasks, [total, body](TaskContext& ctx) {
    const auto w = static_cast<std::size_t>(ctx.width());
    const auto n = static_cast<std::size_t>(ctx.number());
    const std::size_t chunk = (total + w - 1) / w;
    const std::size_t begin = n * chunk;
    const std::size_t end = begin + chunk < total ? begin + chunk : total;
    if (begin < end) body(ctx, begin, end);
  });
  return runtime.run(step);
}

/// Fills `out[i] = fn(i)` for every i in [0, out.size()) using `tasks`
/// parallel tasks.  Each element is written by exactly one task (CREW-clean
/// by construction).
template <typename T, typename Fn>
StepStats parallelMap(Runtime& runtime, SharedArray<T>& out, int tasks,
                      Fn fn) {
  return parallelFor(runtime, out.size(), tasks,
                     [&out, fn](TaskContext& ctx, std::size_t begin,
                                std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         ctx.write(out, i, fn(i));
                       }
                     });
}

/// Parallel reduction: combines `fn(i)` over i in [0, total) with the
/// associative `combine`.  `identity` must be the *neutral element* of
/// `combine` (combine(identity, x) == x): it seeds every per-task partial
/// and the final fold, so a non-neutral value would be counted once per
/// task.  Per-task partials flow through a scratch SharedArray (the
/// canonical CREW reduction pattern); the final fold runs sequentially
/// after the step commits.
template <typename T, typename Fn, typename Combine>
T parallelReduce(Runtime& runtime, std::size_t total, int tasks, T identity,
                 Fn fn, Combine combine) {
  TPRM_CHECK(tasks >= 1, "parallelReduce needs at least one task");
  SharedArray<T> partials(static_cast<std::size_t>(tasks), identity);
  parallelFor(runtime, total, tasks,
              [&partials, identity, fn, combine](
                  TaskContext& ctx, std::size_t begin, std::size_t end) {
                T acc = identity;
                for (std::size_t i = begin; i < end; ++i) {
                  acc = combine(acc, fn(i));
                }
                ctx.write(partials, static_cast<std::size_t>(ctx.number()),
                          acc);
              });
  T result = identity;
  for (std::size_t i = 0; i < partials.size(); ++i) {
    result = combine(result, partials.read(i));
  }
  return result;
}

}  // namespace tprm::calypso
