// Calypso shared data structures (the `shared` keyword of the source
// language) with CREW, two-phase semantics.
//
// Reads always return the master copy (the state at the beginning of the
// current parallel step); writes go through a TaskContext and land in the
// execution's private WriteSet.  The runtime commits the winning write sets
// at step end, in task order, and (in checked mode) flags CREW violations —
// two distinct tasks writing the same element within one step.
#pragma once

#include <cstddef>
#include <vector>

#include "calypso/write_set.h"
#include "common/check.h"

namespace tprm::calypso {

class TaskContext;

/// A shared 1-D array of POD-ish elements (the workhorse shared structure;
/// scalars are SharedVar below).  Not itself thread-safe for *mutation* —
/// all mutation flows through write sets committed single-threaded.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  explicit SharedArray(std::size_t size, T initial = T{})
      : master_(size, initial) {}

  SharedArray(const SharedArray&) = delete;
  SharedArray& operator=(const SharedArray&) = delete;

  /// CREW read of the pre-step master value.  Safe to call concurrently from
  /// any routine.
  [[nodiscard]] const T& read(std::size_t index) const {
    TPRM_DCHECK(index < master_.size(), "SharedArray read out of range");
    return master_[index];
  }
  [[nodiscard]] const T& operator[](std::size_t index) const {
    return read(index);
  }

  [[nodiscard]] std::size_t size() const { return master_.size(); }

  /// Whole-array snapshot access for sequential code between steps.
  [[nodiscard]] const std::vector<T>& snapshot() const { return master_; }

  /// Direct mutation for sequential code between steps (not allowed inside a
  /// parallel step; the runtime cannot detect this, so it is documented
  /// rather than enforced).
  void sequentialWrite(std::size_t index, T value) {
    TPRM_CHECK(index < master_.size(), "SharedArray write out of range");
    master_[index] = std::move(value);
  }
  void sequentialResize(std::size_t size, T fill = T{}) {
    master_.resize(size, std::move(fill));
  }

 private:
  friend class TaskContext;

  /// Typed shadow buffer of deferred writes against this array.
  class Buffer final : public ShadowBuffer {
   public:
    explicit Buffer(SharedArray* target) : target_(target) {}
    void record(std::size_t index, T value) {
      writes_.emplace_back(index, std::move(value));
    }
    void apply() override {
      for (auto& [index, value] : writes_) {
        TPRM_CHECK(index < target_->master_.size(),
                   "deferred SharedArray write out of range");
        target_->master_[index] = std::move(value);
      }
    }
    [[nodiscard]] const void* target() const override { return target_; }
    [[nodiscard]] std::size_t size() const override { return writes_.size(); }
    void visitIndices(const std::function<void(const void*, std::size_t)>&
                          visit) const override {
      for (const auto& [index, value] : writes_) {
        (void)value;
        visit(target_, index);
      }
    }

   private:
    SharedArray* target_;
    std::vector<std::pair<std::size_t, T>> writes_;
  };

  std::vector<T> master_;
};

/// A shared scalar: a one-element SharedArray with value syntax.
template <typename T>
class SharedVar {
 public:
  explicit SharedVar(T initial = T{}) : array_(1, std::move(initial)) {}

  [[nodiscard]] const T& read() const { return array_.read(0); }
  void sequentialWrite(T value) { array_.sequentialWrite(0, std::move(value)); }

  /// Underlying array, for TaskContext::write.
  [[nodiscard]] SharedArray<T>& array() { return array_; }
  [[nodiscard]] const SharedArray<T>& array() const { return array_; }

 private:
  SharedArray<T> array_;
};

}  // namespace tprm::calypso
