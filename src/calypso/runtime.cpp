#include "calypso/runtime.h"

#include <chrono>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/log.h"

namespace tprm::calypso {

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct Runtime::Worker {
  explicit Worker(std::size_t idx) : index(idx) {}
  std::size_t index;
  std::thread thread;
  std::atomic<bool> dead{false};
  std::atomic<bool> exit{false};
  FaultPlan plan;  // written only between steps
};

struct Runtime::StepState {
  const ParallelStep* step = nullptr;
  int width = 0;
  std::atomic<int> nextFresh{0};
  std::atomic<int> eagerCursor{0};
  std::atomic<bool> doneFlag{false};
  /// Executions currently inside a task body; run() must not return (and
  /// destroy this state) while any are in flight.
  std::atomic<int> active{0};
  std::unique_ptr<std::atomic<bool>[]> completed;
  // Winner write sets, one slot per task; each slot written only by the CAS
  // winner, read by the main thread after the step completes.
  std::vector<std::optional<WriteSet>> winners;
  // Stats.
  std::atomic<int> executionsStarted{0};
  std::atomic<int> executionsDiscarded{0};
  std::atomic<int> workerDeaths{0};
  // Guarded by the runtime mutex:
  int completedCount = 0;
  bool allWorkersDead = false;
};

// ---------------------------------------------------------------------------
// ParallelStep
// ---------------------------------------------------------------------------

int ParallelStep::routine(int copies, Body body) {
  TPRM_CHECK(copies >= 0, "routine copy count must be non-negative");
  TPRM_CHECK(body != nullptr, "routine body must be callable");
  const int first = width();
  for (int i = 0; i < copies; ++i) tasks_.push_back(body);
  return first;
}

// ---------------------------------------------------------------------------
// TaskContext
// ---------------------------------------------------------------------------

void TaskContext::checkpoint() {
  runtime_->maybeInjectFault(static_cast<Runtime::Worker*>(worker_));
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(RuntimeOptions options)
    : options_(options), faultRng_(options.seed) {
  TPRM_CHECK(options.workers >= 1, "runtime needs at least one worker");
  for (int i = 0; i < options.workers; ++i) {
    auto worker = std::make_unique<Worker>(static_cast<std::size_t>(i));
    worker->thread = std::thread([this, w = worker.get()] { workerLoop(w); });
    workers_.push_back(std::move(worker));
  }
}

Runtime::~Runtime() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shuttingDown_ = true;
  }
  wakeWorkers_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

int Runtime::workerCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

int Runtime::deadWorkerCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int dead = 0;
  for (const auto& w : workers_) {
    if (w->dead.load(std::memory_order_relaxed)) ++dead;
  }
  return dead;
}

void Runtime::setWorkerCount(int workers) {
  TPRM_CHECK(workers >= 1, "runtime needs at least one worker");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TPRM_CHECK(currentStep_ == nullptr,
               "cannot resize the worker pool during a step");
  }
  // Grow.
  while (static_cast<int>(workers_.size()) < workers) {
    auto worker = std::make_unique<Worker>(workers_.size());
    worker->thread = std::thread([this, w = worker.get()] { workerLoop(w); });
    workers_.push_back(std::move(worker));
  }
  // Shrink from the back.
  while (static_cast<int>(workers_.size()) > workers) {
    auto& victim = workers_.back();
    victim->exit.store(true);
    wakeWorkers_.notify_all();
    if (victim->thread.joinable()) victim->thread.join();
    workers_.pop_back();
  }
}

void Runtime::setFaultPlan(std::size_t index, FaultPlan plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TPRM_CHECK(currentStep_ == nullptr,
             "cannot change fault plans during a step");
  TPRM_CHECK(index < workers_.size(), "worker index out of range");
  workers_[index]->plan = plan;
}

void Runtime::reviveAll() {
  const std::lock_guard<std::mutex> lock(mutex_);
  TPRM_CHECK(currentStep_ == nullptr, "cannot revive during a step");
  for (auto& w : workers_) {
    w->plan = FaultPlan{};
    w->dead.store(false);
  }
}

void Runtime::maybeInjectFault(Worker* self) {
  // Plans are only mutated between steps, so plan reads are race-free; the
  // RNG takes the lock because all workers share one deterministic stream.
  const FaultPlan& plan = self->plan;
  bool death = false;
  bool stall = false;
  if (plan.deathProbability > 0.0 || plan.stallProbability > 0.0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (plan.deathProbability > 0.0) {
      death = faultRng_.bernoulli(plan.deathProbability);
    }
    if (!death && plan.stallProbability > 0.0) {
      stall = faultRng_.bernoulli(plan.stallProbability);
    }
  }
  if (death) {
    self->dead.store(true);
    throw WorkerFault{self->index};
  }
  if (stall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.stallMs));
  }
}

int Runtime::claimTask(StepState& state) {
  // Fresh tasks first.
  const int fresh = state.nextFresh.fetch_add(1, std::memory_order_relaxed);
  if (fresh < state.width) return fresh;
  state.nextFresh.store(state.width, std::memory_order_relaxed);
  // Eager scheduling: re-issue any uncompleted task (possibly already
  // executing elsewhere; idempotence makes the duplicate safe).
  const int start = state.eagerCursor.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < state.width; ++i) {
    const int task = (start + i) % state.width;
    if (!state.completed[static_cast<std::size_t>(task)].load(
            std::memory_order_acquire)) {
      return task;
    }
  }
  return -1;
}

void Runtime::executeClaimed(StepState& stepState, Worker* self, int task) {
  // The caller (workerLoop) pins the StepState via state->active, so this
  // reference stays valid even if the step completes concurrently.
  StepState* state = &stepState;
  state->executionsStarted.fetch_add(1, std::memory_order_relaxed);

  TaskContext ctx(state->width, task, this, self);
  bool faulted = false;
  try {
    // Give fault injection a shot even for bodies without checkpoints.
    ctx.checkpoint();
    state->step->tasks_[static_cast<std::size_t>(task)](ctx);
  } catch (const WorkerFault&) {
    faulted = true;
  }

  if (faulted) {
    state->executionsDiscarded.fetch_add(1, std::memory_order_relaxed);
    state->workerDeaths.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mutex_);
    bool anyAlive = false;
    for (const auto& w : workers_) {
      if (!w->dead.load() && !w->exit.load()) anyAlive = true;
    }
    if (!anyAlive && !state->doneFlag.load()) {
      // Unblock run() so it can fail loudly instead of hanging.
      state->allWorkersDead = true;
      stepDone_.notify_all();
    }
    return;
  }

  auto& completedFlag = state->completed[static_cast<std::size_t>(task)];
  bool expected = false;
  if (completedFlag.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    state->winners[static_cast<std::size_t>(task)].emplace(
        std::move(ctx.writeSet_));
    if (++state->completedCount == state->width) {
      state->doneFlag.store(true, std::memory_order_release);
      stepDone_.notify_all();
    }
  } else {
    // Lost the completion race: this duplicate's writes are discarded
    // (two-phase idempotent execution).
    state->executionsDiscarded.fetch_add(1, std::memory_order_relaxed);
  }
}

void Runtime::workerLoop(Worker* self) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wakeWorkers_.wait(lock, [&] {
      return shuttingDown_ || self->exit.load() ||
             (currentStep_ != nullptr && !currentStep_->doneFlag.load() &&
              !self->dead.load());
    });
    if (shuttingDown_ || self->exit.load()) return;
    StepState* state = currentStep_;
    // Pin the state so run() cannot destroy it while we execute.
    state->active.fetch_add(1, std::memory_order_acq_rel);
    lock.unlock();

    while (!self->dead.load() && !state->doneFlag.load()) {
      const int task = claimTask(*state);
      if (task < 0) break;
      if (state->completed[static_cast<std::size_t>(task)].load(
              std::memory_order_acquire)) {
        continue;  // completed between claim and execute
      }
      executeClaimed(*state, self, task);
    }

    lock.lock();
    if (state->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      stepDone_.notify_all();  // last one out lets run() reclaim the state
    }
  }
}

StepStats Runtime::run(const ParallelStep& step) {
  StepState state;
  state.step = &step;
  state.width = step.width();
  state.completed = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(std::max(state.width, 1)));
  for (int i = 0; i < state.width; ++i) {
    state.completed[static_cast<std::size_t>(i)].store(false);
  }
  state.winners.resize(static_cast<std::size_t>(state.width));

  {
    std::unique_lock<std::mutex> lock(mutex_);
    TPRM_CHECK(currentStep_ == nullptr, "steps cannot nest or overlap");
    bool anyAlive = false;
    for (const auto& w : workers_) {
      if (!w->dead.load()) anyAlive = true;
    }
    TPRM_CHECK(anyAlive, "no live workers: revive or resize the pool first");
    if (state.width == 0) {
      state.doneFlag.store(true);
    } else {
      currentStep_ = &state;
      wakeWorkers_.notify_all();
    }
    stepDone_.wait(lock, [&] {
      return (state.doneFlag.load() && state.active.load() == 0) ||
             state.allWorkersDead;
    });
    currentStep_ = nullptr;
    TPRM_CHECK(!state.allWorkersDead || state.doneFlag.load(),
               "every worker died before the step completed");
    // Drain stragglers still holding the state (e.g. losers of the final
    // completion race).
    stepDone_.wait(lock, [&] { return state.active.load() == 0; });
  }

  // Commit winners in task order and gather stats.  Single-threaded: the
  // paper's two-phase strategy applies updates at the end of the step.
  StepStats stats;
  stats.width = state.width;
  stats.executionsStarted = state.executionsStarted.load();
  stats.executionsDiscarded = state.executionsDiscarded.load();
  stats.workerDeaths = state.workerDeaths.load();
  stats.executionsCommitted = state.width;

  std::unordered_map<const void*, std::unordered_map<std::size_t, int>>
      writers;
  for (int taskIdx = 0; taskIdx < state.width; ++taskIdx) {
    auto& winner = state.winners[static_cast<std::size_t>(taskIdx)];
    TPRM_CHECK(winner.has_value(), "completed task lost its write set");
    if (options_.detectCrewViolations) {
      for (const auto& buffer : winner->buffers()) {
        buffer->visitIndices([&](const void* obj, std::size_t element) {
          auto [it, inserted] = writers[obj].try_emplace(element, taskIdx);
          if (!inserted && it->second != taskIdx) {
            ++stats.crewViolations;
            TPRM_CHECK(!options_.abortOnCrewViolation,
                       "CREW violation: two tasks wrote the same shared "
                       "element in one parallel step");
          }
        });
      }
    }
    stats.writesCommitted += winner->totalWrites();
    winner->commit();
  }
  return stats;
}

}  // namespace tprm::calypso
