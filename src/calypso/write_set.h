// Two-phase write capture for the Calypso runtime.
//
// Within a parallel step, Calypso gives routines CREW access to shared data:
// reads see the values from before the step; writes are buffered and become
// visible only when the step ends (Section 2: "updates visible only at the
// end of the current step").  Because eager scheduling may execute the same
// task multiple times, each *execution* owns a private WriteSet; only the
// write set of the first execution to complete is committed, giving
// exactly-once semantics for idempotent tasks.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace tprm::calypso {

/// Type-erased buffer of pending writes against one shared object.
class ShadowBuffer {
 public:
  virtual ~ShadowBuffer() = default;

  /// Applies all buffered writes to the master copy.  Called single-threaded
  /// at step end, in task order.
  virtual void apply() = 0;

  /// Identity of the shared object this buffer targets.
  [[nodiscard]] virtual const void* target() const = 0;

  /// Number of buffered writes.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Visits (target, elementIndex) pairs for CREW conflict checking.
  virtual void visitIndices(
      const std::function<void(const void*, std::size_t)>& visit) const = 0;
};

/// All writes performed by one task execution, across all shared objects.
class WriteSet {
 public:
  WriteSet() = default;
  WriteSet(const WriteSet&) = delete;
  WriteSet& operator=(const WriteSet&) = delete;
  WriteSet(WriteSet&&) = default;
  WriteSet& operator=(WriteSet&&) = default;

  /// Finds or creates the typed buffer for `target`.  `make` constructs the
  /// buffer on first use.
  template <typename Buffer, typename Target>
  Buffer& bufferFor(Target* target) {
    for (const auto& b : buffers_) {
      if (b->target() == target) return static_cast<Buffer&>(*b);
    }
    buffers_.push_back(std::make_unique<Buffer>(target));
    return static_cast<Buffer&>(*buffers_.back());
  }

  /// Applies every buffer to its master copy.
  void commit() {
    for (const auto& b : buffers_) b->apply();
  }

  /// Discards all buffered writes (losing execution of a duplicated task).
  void discard() { buffers_.clear(); }

  [[nodiscard]] std::size_t totalWrites() const {
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b->size();
    return n;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<ShadowBuffer>>& buffers()
      const {
    return buffers_;
  }

 private:
  std::vector<std::unique_ptr<ShadowBuffer>> buffers_;
};

}  // namespace tprm::calypso
