// The Calypso execution runtime: parallel steps of idempotent routines over a
// malleable worker pool, with two-phase idempotent execution and eager
// scheduling (Section 2 of the paper; the MILAN execution techniques of [5]).
//
// Programming model mirror:
//
//   parbegin
//     routine [n](int width, int number) { body }
//     ...
//   parend;
//
// becomes
//
//   ParallelStep step;
//   step.routine(n, [&](TaskContext& ctx) { ...ctx.width()/ctx.number()... });
//   runtime.run(step);
//
// Semantics provided:
//  * CREW shared memory: routines read pre-step values of SharedArray /
//    SharedVar; writes are buffered per execution and commit at step end.
//  * Idempotent, exactly-once effects: a task may be executed several times
//    (eager scheduling re-issues uncompleted tasks to idle workers, masking
//    slow or dead workers); only the first completed execution's writes are
//    committed.
//  * Malleability: the logical width of a step is independent of the worker
//    count, which may change between steps (setWorkerCount).
//  * Fault masking: workers can be configured to die or stall; the step still
//    completes as long as one worker survives.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "calypso/shared_memory.h"
#include "calypso/write_set.h"
#include "common/rng.h"
#include "common/time.h"

namespace tprm::calypso {

class Runtime;

/// Handle passed to each routine execution: the (width, number) arguments of
/// the Calypso routine statement, plus the write API into shared memory.
class TaskContext {
 public:
  /// Total number of tasks in the current parallel step.
  [[nodiscard]] int width() const { return width_; }
  /// Sequence number of this task within the step, in [0, width).
  [[nodiscard]] int number() const { return number_; }

  /// Buffered (two-phase) write: becomes visible in `array` only after the
  /// step completes, and only if this execution wins the completion race.
  template <typename T>
  void write(SharedArray<T>& array, std::size_t index, T value) {
    auto& buffer =
        writeSet_.bufferFor<typename SharedArray<T>::Buffer>(&array);
    buffer.record(index, std::move(value));
  }

  /// Buffered write to a shared scalar.
  template <typename T>
  void write(SharedVar<T>& var, T value) {
    write(var.array(), 0, std::move(value));
  }

  /// Cooperative fault-injection point: routines that loop should call this
  /// periodically so injected worker faults can take effect mid-task.
  /// Returns normally or throws WorkerFault (caught by the runtime).
  void checkpoint();

 private:
  friend class Runtime;
  TaskContext(int width, int number, Runtime* runtime, void* worker)
      : width_(width), number_(number), runtime_(runtime), worker_(worker) {}

  int width_;
  int number_;
  Runtime* runtime_;
  void* worker_;  // Runtime::Worker*, opaque here
  WriteSet writeSet_;
};

/// One parallel step: an ordered list of routine groups, exactly like the
/// parbegin...parend block (concurrency exists both inside one routine and
/// among routines of the same step).
class ParallelStep {
 public:
  using Body = std::function<void(TaskContext&)>;

  /// Adds `copies` tasks running `body` (the `routine [copies](...)` form).
  /// Returns the index of the first task of this group within the step.
  int routine(int copies, Body body);

  /// Total task count (the `width` every task sees).
  [[nodiscard]] int width() const { return static_cast<int>(tasks_.size()); }

 private:
  friend class Runtime;
  std::vector<Body> tasks_;
};

/// Per-worker fault injection plan (test/bench hook; a production MILAN
/// worker would fail for real).
struct FaultPlan {
  /// Probability that a given task *execution* on this worker dies at a
  /// checkpoint (the worker is lost for the rest of the run).
  double deathProbability = 0.0;
  /// Probability that an execution stalls at a checkpoint for `stallMs`.
  double stallProbability = 0.0;
  int stallMs = 0;
};

/// Statistics of one parallel step execution.
struct StepStats {
  int width = 0;
  /// Task executions started (>= width under eager re-execution).
  int executionsStarted = 0;
  /// Executions that completed and won the commit race.
  int executionsCommitted = 0;
  /// Executions discarded: completed after another execution of the same
  /// task, or killed by fault injection.
  int executionsDiscarded = 0;
  /// Injected worker deaths observed during this step.
  int workerDeaths = 0;
  /// Total buffered writes committed.
  std::size_t writesCommitted = 0;
  /// CREW write-write violations detected at commit (distinct tasks writing
  /// the same shared element in one step).
  int crewViolations = 0;
};

/// Runtime options.
struct RuntimeOptions {
  /// Initial worker count (malleable; see setWorkerCount).
  int workers = 2;
  /// Seed for fault injection randomness.
  std::uint64_t seed = 1;
  /// Detect CREW write-write conflicts at commit time (O(writes) hashing).
  bool detectCrewViolations = true;
  /// Abort the process on a CREW violation instead of recording it.
  bool abortOnCrewViolation = false;
};

/// Exception thrown at a checkpoint to simulate a worker crash.
struct WorkerFault {
  std::size_t worker;
};

/// The Calypso runtime.  Not reentrant: one step runs at a time (matching
/// the language model of parallel steps embedded in a sequential program).
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes all tasks of `step` to completion and commits their writes.
  /// Blocks until done.  Aborts if every worker has died.
  StepStats run(const ParallelStep& step);

  /// Malleability: resizes the worker pool (takes effect immediately for
  /// subsequent steps; must not be called while a step is running).
  void setWorkerCount(int workers);
  [[nodiscard]] int workerCount() const;
  /// Workers that have died from injected faults (cumulative).
  [[nodiscard]] int deadWorkerCount() const;

  /// Installs a fault plan for worker `index` (applies to future executions).
  void setFaultPlan(std::size_t index, FaultPlan plan);
  /// Clears all fault plans and revives dead workers.
  void reviveAll();

 private:
  friend class TaskContext;

  struct Worker;
  struct StepState;

  void workerLoop(Worker* self);
  /// Claims a task for execution (fresh first, then eager duplicates).
  /// Returns -1 when nothing is left to execute.
  int claimTask(StepState& state);
  void executeClaimed(StepState& state, Worker* self, int task);
  /// Fault-injection hook called from TaskContext::checkpoint.
  void maybeInjectFault(Worker* self);

  RuntimeOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable wakeWorkers_;
  std::condition_variable stepDone_;
  std::vector<std::unique_ptr<Worker>> workers_;
  StepState* currentStep_ = nullptr;  // guarded by mutex_
  bool shuttingDown_ = false;
  Rng faultRng_;
};

}  // namespace tprm::calypso
