#include "service/wiretrace.h"

#include <cerrno>
#include <cstring>

namespace tprm::service {

namespace {

void putU32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v & 0xFF);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xFF);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xFF);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xFF);
}

void putU64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t getU32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t getU64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

void fnv32(std::uint32_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 16777619u;  // FNV-1a 32-bit prime
  }
}

std::string errnoMessage(const char* what) {
  std::string message = what;
  message += ": ";
  message += std::strerror(errno);
  return message;
}

constexpr std::size_t kHeaderBytes = 16;   // magic + version + reserved
constexpr std::size_t kRecordHead = 20;    // len + arrivalSeq + deltaNanos

}  // namespace

const char* toString(WireTraceStatus status) {
  switch (status) {
    case WireTraceStatus::Ok: return "ok";
    case WireTraceStatus::Eof: return "eof";
    case WireTraceStatus::IoError: return "io_error";
    case WireTraceStatus::BadMagic: return "bad_magic";
    case WireTraceStatus::BadVersion: return "bad_version";
    case WireTraceStatus::Truncated: return "truncated";
    case WireTraceStatus::TooLarge: return "too_large";
    case WireTraceStatus::Corrupt: return "corrupt";
  }
  return "?";
}

std::uint32_t wireTraceChecksum(const WireTraceRecord& record) {
  unsigned char fixed[16];
  putU64(fixed, record.arrivalSeq);
  putU64(fixed + 8, record.deltaNanos);
  std::uint32_t h = 2166136261u;  // FNV-1a 32-bit offset basis
  fnv32(h, fixed, sizeof(fixed));
  fnv32(h, record.payload.data(), record.payload.size());
  return h;
}

WireTraceWriter::~WireTraceWriter() { (void)close(nullptr); }

bool WireTraceWriter::open(const std::string& path, std::string* error) {
  if (file_ != nullptr) {
    if (error != nullptr) *error = "trace writer already open";
    return false;
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = errnoMessage(("open " + path).c_str());
    }
    return false;
  }
  unsigned char header[kHeaderBytes];
  std::memcpy(header, kWireTraceMagic, sizeof(kWireTraceMagic));
  putU32(header + 8, kWireTraceVersion);
  putU32(header + 12, 0);  // reserved
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    if (error != nullptr) *error = errnoMessage("write trace header");
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  records_ = 0;
  return true;
}

bool WireTraceWriter::append(const WireTraceRecord& record,
                             std::string* error) {
  if (file_ == nullptr) {
    if (error != nullptr) *error = "trace writer is not open";
    return false;
  }
  if (record.payload.size() > kWireTraceMaxPayloadBytes) {
    if (error != nullptr) *error = "record payload exceeds the format cap";
    return false;
  }
  unsigned char head[kRecordHead];
  putU32(head, static_cast<std::uint32_t>(record.payload.size()));
  putU64(head + 4, record.arrivalSeq);
  putU64(head + 12, record.deltaNanos);
  unsigned char tail[4];
  putU32(tail, wireTraceChecksum(record));
  if (std::fwrite(head, 1, sizeof(head), file_) != sizeof(head) ||
      (!record.payload.empty() &&
       std::fwrite(record.payload.data(), 1, record.payload.size(), file_) !=
           record.payload.size()) ||
      std::fwrite(tail, 1, sizeof(tail), file_) != sizeof(tail)) {
    if (error != nullptr) *error = errnoMessage("write trace record");
    return false;
  }
  ++records_;
  return true;
}

bool WireTraceWriter::close(std::string* error) {
  if (file_ == nullptr) return true;
  const bool flushed = std::fflush(file_) == 0;
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!flushed || !closed) {
    if (error != nullptr) *error = errnoMessage("close trace file");
    return false;
  }
  return true;
}

WireTraceReader::~WireTraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

WireTraceStatus WireTraceReader::open(const std::string& path,
                                      std::string* message) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    if (message != nullptr) {
      *message = errnoMessage(("open " + path).c_str());
    }
    return WireTraceStatus::IoError;
  }
  unsigned char header[kHeaderBytes];
  const std::size_t got = std::fread(header, 1, sizeof(header), file_);
  if (got != sizeof(header)) {
    if (message != nullptr) *message = "file ends inside the trace header";
    return WireTraceStatus::Truncated;
  }
  if (std::memcmp(header, kWireTraceMagic, sizeof(kWireTraceMagic)) != 0) {
    if (message != nullptr) *message = "not a TPRM wire trace (bad magic)";
    return WireTraceStatus::BadMagic;
  }
  const std::uint32_t version = getU32(header + 8);
  if (version != kWireTraceVersion) {
    if (message != nullptr) {
      *message = "unsupported trace version " + std::to_string(version) +
                 " (reader speaks " + std::to_string(kWireTraceVersion) + ")";
    }
    return WireTraceStatus::BadVersion;
  }
  return WireTraceStatus::Ok;
}

WireTraceReadResult WireTraceReader::next() {
  WireTraceReadResult result;
  if (file_ == nullptr) {
    result.status = WireTraceStatus::IoError;
    result.message = "trace reader is not open";
    return result;
  }
  unsigned char head[kRecordHead];
  const std::size_t got = std::fread(head, 1, sizeof(head), file_);
  if (got == 0 && std::feof(file_) != 0) {
    result.status = WireTraceStatus::Eof;
    return result;
  }
  if (got != sizeof(head)) {
    result.status = std::ferror(file_) != 0 ? WireTraceStatus::IoError
                                            : WireTraceStatus::Truncated;
    result.message = result.status == WireTraceStatus::IoError
                         ? errnoMessage("read record header")
                         : "file ends inside a record header";
    return result;
  }
  const std::uint32_t payloadLen = getU32(head);
  if (payloadLen > kWireTraceMaxPayloadBytes) {
    result.status = WireTraceStatus::TooLarge;
    result.message = "declared payload of " + std::to_string(payloadLen) +
                     " bytes exceeds the format cap";
    return result;
  }
  result.record.arrivalSeq = getU64(head + 4);
  result.record.deltaNanos = getU64(head + 12);
  result.record.payload.resize(payloadLen);
  if (payloadLen > 0 &&
      std::fread(result.record.payload.data(), 1, payloadLen, file_) !=
          payloadLen) {
    result.status = std::ferror(file_) != 0 ? WireTraceStatus::IoError
                                            : WireTraceStatus::Truncated;
    result.message = result.status == WireTraceStatus::IoError
                         ? errnoMessage("read record payload")
                         : "file ends inside a record payload";
    return result;
  }
  unsigned char tail[4];
  if (std::fread(tail, 1, sizeof(tail), file_) != sizeof(tail)) {
    result.status = std::ferror(file_) != 0 ? WireTraceStatus::IoError
                                            : WireTraceStatus::Truncated;
    result.message = result.status == WireTraceStatus::IoError
                         ? errnoMessage("read record checksum")
                         : "file ends inside a record checksum";
    return result;
  }
  const std::uint32_t stored = getU32(tail);
  const std::uint32_t computed = wireTraceChecksum(result.record);
  if (stored != computed) {
    result.status = WireTraceStatus::Corrupt;
    result.message = "record checksum mismatch (arrivalSeq " +
                     std::to_string(result.record.arrivalSeq) + ")";
    result.record = WireTraceRecord{};
    return result;
  }
  result.status = WireTraceStatus::Ok;
  return result;
}

WireTraceLoadResult loadWireTrace(const std::string& path) {
  WireTraceLoadResult loaded;
  WireTraceReader reader;
  loaded.status = reader.open(path, &loaded.message);
  if (loaded.status != WireTraceStatus::Ok) return loaded;
  for (;;) {
    WireTraceReadResult step = reader.next();
    if (step.status == WireTraceStatus::Ok) {
      loaded.records.push_back(std::move(step.record));
      continue;
    }
    loaded.status = step.status;
    loaded.message = std::move(step.message);
    return loaded;
  }
}

}  // namespace tprm::service
