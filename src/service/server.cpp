#include "service/server.h"

#include <sys/uio.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace tprm::service {

namespace {

/// Accept poll granularity: how quickly the accept threads notice
/// stopping_.  The event loops use the same slice as their epoll timeout so
/// idle sweeps and shutdown flags are honoured promptly.
constexpr std::chrono::milliseconds kPollSlice{50};

/// deliverSeq sentinel for responses exempt from v1 submit-order delivery
/// (all v2 traffic, plus desynced-stream errors).
constexpr std::uint64_t kUnordered = ~std::uint64_t{0};

/// iovec entries per sendmsg in the scatter-gather flush.  Comfortably
/// below IOV_MAX (1024 on Linux); a busy batch rarely exceeds a few dozen
/// frames per connection.
constexpr int kMaxIov = 64;

using Clock = std::chrono::steady_clock;

qos::ShardedOptions shardedOptions(const ServerConfig& config) {
  qos::ShardedOptions options;
  options.shards = config.shards;
  options.greedy = config.options;
  options.spill = config.shardSpill;
  options.gang = config.shardGang;
  return options;
}

}  // namespace

std::uint32_t adaptiveWindow(std::size_t queueDepth,
                             std::size_t queueCapacity,
                             std::uint32_t fullWindow) {
  const std::uint32_t full = std::max<std::uint32_t>(fullWindow, 1);
  if (queueCapacity == 0 || full == 1) return full;
  if (queueDepth * 2 >= queueCapacity) {
    return std::max<std::uint32_t>(1, full / 8);
  }
  if (queueDepth * 4 >= queueCapacity) {
    return std::max<std::uint32_t>(1, full / 2);
  }
  return full;
}

/// One decoded command travelling from an event loop to a worker thread.
/// Immutable once enqueued: the worker reads it, the loop never touches it
/// again (responses come back as a separate ResponseMsg).
struct NegotiationServer::PendingCommand {
  Request request;
  std::uint64_t arrivalSeq = 0;
  /// Global job id reserved at enqueue (NEGOTIATE only): fixes the home
  /// shard before the command is queued.
  std::optional<std::uint64_t> presetJobId;
  /// Stamped at enqueue when observability is on (0 otherwise).
  std::int64_t enqueuedNs = 0;
  /// Where the response goes: the loop that owns the connection, the
  /// connection itself, and (v1 only) the submit-order slot the response
  /// must be delivered in.  kUnordered for v2.
  int loopIndex = 0;
  std::uint64_t connId = 0;
  std::uint64_t deliverSeq = 0;
};

/// A finished command's encoded response — or a batch of reshape push
/// events — travelling worker -> loop.
struct NegotiationServer::ResponseMsg {
  std::uint64_t connId = 0;
  std::uint64_t deliverSeq = 0;
  std::string payload;  // encoded response JSON (empty for push batches)
  /// Unsolicited reshape notification: does not consume an in-flight slot.
  /// The loop routes it by connection version — encoded as a RESHAPED push
  /// frame (v2) or buffered for the next RESHAPES poll (v1).
  bool push = false;
  std::vector<ReshapeEvent> events;  // push batches only
};

/// Per-connection state, owned exclusively by its event-loop thread.
struct NegotiationServer::Connection {
  std::uint64_t id = 0;
  net::Socket socket;
  net::FrameDecoder decoder;
  /// Buffered output: framed responses awaiting the wire.  Flushed with
  /// scatter-gather writev — one syscall covers many frames with no
  /// coalescing copy; outOff is the bytes of the front frame already sent.
  std::deque<std::string> outq;
  std::size_t outOff = 0;
  std::size_t outBytes = 0;  // total unwritten bytes across outq
  bool wantWrite = false;   // EPOLLOUT armed
  bool readPaused = false;  // EPOLLIN disarmed (v1 queue backpressure)
  bool closing = false;     // close once every pending response has flushed
  bool closed = false;      // socket gone; awaiting reap
  bool v2 = false;          // HELLO handshake completed
  bool sawFrame = false;    // first non-HELLO frame locks the connection v1
  std::uint32_t window = 1;    // negotiated v2 in-flight cap
  std::uint32_t inFlight = 0;  // commands enqueued, response not delivered
  /// v1 ordering: every inbound frame consumes one submit slot; responses
  /// are written strictly in slot order even when sharded execution
  /// completes out of order (held parks early completions).
  std::uint64_t nextSubmitSeq = 0;
  std::uint64_t nextDeliverSeq = 0;
  std::map<std::uint64_t, std::string> held;
  /// v1 only: reshape events awaiting a RESHAPES poll (bounded by
  /// config.reshapeEventBuffer; oldest dropped).
  std::deque<ReshapeEvent> reshapes;
  Clock::time_point lastActivity{};
};

/// One event loop: epoll set, eventfd wakeup, and the MPSC inbox other
/// threads use to hand it work (new connections from the acceptors,
/// responses and resume signals from the shard workers, shutdown phases
/// from stop()).
struct NegotiationServer::Loop {
  int index = 0;
  net::Epoll epoll;
  net::WakeupFd wakeup;
  std::thread thread;

  std::mutex inboxMu;
  std::vector<net::Socket> pendingConns;       // guarded by inboxMu
  std::vector<ResponseMsg> pendingResponses;   // guarded by inboxMu
  std::vector<std::uint64_t> pendingResumes;   // guarded by inboxMu
  bool drainRequested = false;                 // guarded by inboxMu
  bool finishRequested = false;                // guarded by inboxMu

  // Loop-thread-local state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
  std::vector<std::uint64_t> doomed;  // closed this cycle; erased at reap
  bool draining = false;
  bool finishing = false;
  Clock::time_point finishDeadline{};
  Clock::time_point lastSweep{};
};

/// One shard's command queue and the worker draining it.  The queue itself
/// is pluggable (config.queueKind, qos/command_queue.h); every kind is
/// soft-bounded from the server's point of view: producers never block (the
/// loop threads must not stall); at/above commandQueueCapacity v1 producers
/// pause reading and v2 producers get `busy` instead.
struct NegotiationServer::ShardQueue {
  std::unique_ptr<qos::CommandQueue<std::shared_ptr<PendingCommand>>> impl;
  /// (loopIndex, connId) of v1 connections paused on this queue's
  /// backpressure; whoever drains the queue below capacity (its worker or,
  /// in steal mode, a thief) flushes the list.
  std::mutex throttledMu;
  std::vector<std::pair<int, std::uint64_t>> throttled;  // guarded by ^
  /// "server.queue_depth" (shards == 1) / "server.queue_depth.shard<k>".
  /// Sampled at enqueue from the depth the push itself observed, so the
  /// high-water mark catches every peak even when the worker drains whole
  /// batches between samples.
  obs::Gauge* depth = nullptr;
  std::thread worker;
};

NegotiationServer::NegotiationServer(ServerConfig config)
    : config_(std::move(config)),
      frameLimits_{config_.maxFrameBytes},
      arbitrator_(config_.processors, shardedOptions(config_)) {
  config_.eventLoops = std::max(config_.eventLoops, 1);
  config_.workerBatch = std::max<std::size_t>(config_.workerBatch, 1);
  config_.reshapeEventBuffer =
      std::max<std::size_t>(config_.reshapeEventBuffer, 1);
  if (config_.reshapePolicy != nullptr) {
    arbitrator_.attachReshapePolicy(config_.reshapePolicy);
  }
  queues_.reserve(static_cast<std::size_t>(config_.shards));
  for (int k = 0; k < config_.shards; ++k) {
    auto queue = std::make_unique<ShardQueue>();
    queue->impl = qos::makeCommandQueue<std::shared_ptr<PendingCommand>>(
        config_.queueKind, config_.commandQueueCapacity);
    queues_.push_back(std::move(queue));
  }
  if (config_.observability) {
    registry_ = std::make_unique<obs::MetricsRegistry>();
    // With one shard the metric names match the unsharded server exactly;
    // with K the per-shard bundles get a shard suffix and the cross-shard
    // events (spill, rebalance) their own bundle.
    std::vector<obs::NegotiationMetrics*> perShard;
    for (int k = 0; k < config_.shards; ++k) {
      const std::string prefix =
          config_.shards == 1 ? "arbitrator"
                              : "arbitrator.shard" + std::to_string(k);
      negotiation_.push_back(std::make_unique<obs::NegotiationMetrics>(
          obs::NegotiationMetrics::fromRegistry(*registry_, prefix)));
      perShard.push_back(negotiation_.back().get());
      queues_[static_cast<std::size_t>(k)]->depth = &registry_->gauge(
          config_.shards == 1 ? "server.queue_depth"
                              : "server.queue_depth.shard" +
                                    std::to_string(k));
    }
    if (config_.shards > 1) {
      shardedMetrics_ = std::make_unique<obs::ShardedMetrics>(
          obs::ShardedMetrics::fromRegistry(*registry_, "sharded"));
    }
    arbitrator_.attachMetrics(std::move(perShard), shardedMetrics_.get());
    trace_ = std::make_unique<obs::TraceRing>(
        std::max<std::size_t>(config_.traceCapacity, 1));
    sessionsActive_ = &registry_->gauge("server.sessions_active");
    queueWaitUs_ = &obs::latencyHistogram(*registry_, "server.queue_wait_us");
    executeUs_ = &obs::latencyHistogram(*registry_, "server.execute_us");
  }
}

NegotiationServer::~NegotiationServer() { stop(); }

bool NegotiationServer::start(std::string* error) {
  TPRM_CHECK(!started_, "start() called twice");
  std::string firstError;
  if (!config_.recordPath.empty() &&
      !traceWriter_.open(config_.recordPath, &firstError)) {
    if (error != nullptr) *error = "record-out: " + firstError;
    return false;
  }
  if (!config_.unixPath.empty()) {
    unixListener_ = net::Listener::listenUnix(config_.unixPath, &firstError);
    if (!unixListener_.valid()) {
      if (error != nullptr) *error = firstError;
      return false;
    }
  }
  if (config_.tcpPort.has_value()) {
    tcpListener_ = net::Listener::listenTcp(*config_.tcpPort, &firstError);
    if (!tcpListener_.valid()) {
      if (error != nullptr) *error = firstError;
      return false;
    }
    boundTcpPort_ = tcpListener_.boundPort();
  }
  if (!unixListener_.valid() && !tcpListener_.valid()) {
    if (error != nullptr) {
      *error = "no listener configured (set unixPath and/or tcpPort)";
    }
    return false;
  }
  for (int i = 0; i < config_.eventLoops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    if (!loop->epoll.open(&firstError) || !loop->wakeup.open(&firstError) ||
        !loop->epoll.add(loop->wakeup.fd(), net::Epoll::kRead, nullptr,
                         &firstError)) {
      if (error != nullptr) *error = "event loop: " + firstError;
      loops_.clear();
      unixListener_.close();
      tcpListener_.close();
      return false;
    }
    loops_.push_back(std::move(loop));
  }
  started_ = true;
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { loopMain(raw); });
  }
  for (int k = 0; k < config_.shards; ++k) {
    queues_[static_cast<std::size_t>(k)]->worker =
        std::thread([this, k] { workerLoop(k); });
  }
  if (config_.shards > 1 && config_.rebalanceIntervalMs > 0) {
    rebalanceThread_ = std::thread([this] { rebalanceLoop(); });
  }
  if (unixListener_.valid()) {
    acceptThreads_.emplace_back([this] { acceptLoop(&unixListener_); });
  }
  if (tcpListener_.valid()) {
    acceptThreads_.emplace_back([this] { acceptLoop(&tcpListener_); });
  }
  return true;
}

void NegotiationServer::stop() {
  if (!started_ || stopped_.exchange(true)) return;
  stopping_ = true;

  // 1. Stop admitting connections.
  for (auto& thread : acceptThreads_) thread.join();
  acceptThreads_.clear();
  unixListener_.close();
  tcpListener_.close();
  if (rebalanceThread_.joinable()) rebalanceThread_.join();

  // 2. Drain the loops: stop reading new frames everywhere.  Commands
  // already decoded and enqueued keep executing; their responses keep
  // flowing back through the inboxes and out to the clients.
  for (auto& loop : loops_) {
    {
      std::lock_guard<std::mutex> lock(loop->inboxMu);
      loop->drainRequested = true;
    }
    loop->wakeup.signal();
  }
  while (drainAcks_.load() < static_cast<int>(loops_.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 3. No producers remain: close the queues and join each worker after it
  // has executed everything already admitted.  seqMutex_ serialises the
  // close against any straggling enqueue; close() wakes parked consumers
  // AND blocked bounded producers (both CVs — the lost-wakeup fix).
  {
    std::lock_guard<std::mutex> lock(seqMutex_);
    queueClosed_.store(true);
  }
  for (auto& queue : queues_) queue->impl->close();
  for (auto& queue : queues_) {
    if (queue->worker.joinable()) queue->worker.join();
  }

  // 4. Finish the loops: deliver the responses the workers just posted,
  // flush every connection's output buffer (bounded by ioTimeout), close
  // the connections, exit.
  for (auto& loop : loops_) {
    {
      std::lock_guard<std::mutex> lock(loop->inboxMu);
      loop->finishRequested = true;
    }
    loop->wakeup.signal();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }

  // 5. Everything is quiet; flush the wire trace, if any.
  if (traceWriter_.isOpen()) {
    std::string traceError;
    if (!traceWriter_.close(&traceError)) {
      TPRM_LOG(Warn) << "wire trace close failed: " << traceError;
    }
  }
}

ServerCounters NegotiationServer::counters() const {
  ServerCounters counters;
  counters.connectionsAccepted = connectionsAccepted_.load();
  counters.connectionsRefused = connectionsRefused_.load();
  counters.framesMalformed = framesMalformed_.load();
  counters.framesOversized = framesOversized_.load();
  counters.commandsExecuted = commandsExecuted_.load();
  counters.disconnectsMidRequest = disconnectsMidRequest_.load();
  counters.busyRejections = busyRejections_.load();
  counters.helloHandshakes = helloHandshakes_.load();
  counters.batchesStolen = batchesStolen_.load();
  counters.reshapeEventsDispatched = reshapeEventsDispatched_.load();
  counters.reshapeEventsDropped = reshapeEventsDropped_.load();
  return counters;
}

JsonValue NegotiationServer::observabilitySnapshot() const {
  const ServerCounters server = counters();
  JsonValue::Object serverObject;
  serverObject["connections_accepted"] =
      static_cast<double>(server.connectionsAccepted);
  serverObject["connections_refused"] =
      static_cast<double>(server.connectionsRefused);
  serverObject["frames_malformed"] =
      static_cast<double>(server.framesMalformed);
  serverObject["frames_oversized"] =
      static_cast<double>(server.framesOversized);
  serverObject["commands_executed"] =
      static_cast<double>(server.commandsExecuted);
  serverObject["disconnects_mid_request"] =
      static_cast<double>(server.disconnectsMidRequest);
  serverObject["busy_rejections"] =
      static_cast<double>(server.busyRejections);
  serverObject["hello_handshakes"] =
      static_cast<double>(server.helloHandshakes);
  serverObject["reshape_events_dispatched"] =
      static_cast<double>(server.reshapeEventsDispatched);
  serverObject["reshape_events_dropped"] =
      static_cast<double>(server.reshapeEventsDropped);

  JsonValue::Object root;
  root["enabled"] = registry_ != nullptr;
  root["server"] = JsonValue(std::move(serverObject));
  if (registry_ != nullptr) {
    // Graft the registry snapshot's sections in at top level.
    const JsonValue metrics = registry_->snapshot();
    for (const auto& [key, value] : metrics.asObject()) root[key] = value;
    root["spans"] = trace_->snapshot();
  }
  return JsonValue(std::move(root));
}

void NegotiationServer::acceptLoop(net::Listener* listener) {
  while (!stopping_) {
    auto accepted = listener->accept(net::Deadline::after(kPollSlice));
    if (accepted.status == net::IoStatus::Timeout) continue;
    if (accepted.status != net::IoStatus::Ok) {
      if (!stopping_) {
        TPRM_LOG(Warn) << "tprmd accept failed: " << accepted.message;
      }
      continue;
    }
    if (stopping_ || activeSessions_.load() >= config_.maxSessions) {
      // Refuse politely: the socket closes without a frame; clients see a
      // clean EOF before any response.
      connectionsRefused_.fetch_add(1);
      continue;
    }
    connectionsAccepted_.fetch_add(1);
    activeSessions_.fetch_add(1);
    auto& loop =
        *loops_[nextLoop_.fetch_add(1, std::memory_order_relaxed) %
                loops_.size()];
    {
      std::lock_guard<std::mutex> lock(loop.inboxMu);
      loop.pendingConns.push_back(std::move(accepted.socket));
    }
    loop.wakeup.signal();
  }
}

// --- Event loop ------------------------------------------------------------

void NegotiationServer::loopMain(Loop* loop) {
  std::vector<net::Epoll::Event> events;
  std::string error;
  loop->lastSweep = Clock::now();
  auto reap = [loop] {
    for (const auto id : loop->doomed) loop->conns.erase(id);
    loop->doomed.clear();
  };
  for (;;) {
    if (!loop->epoll.wait(static_cast<int>(kPollSlice.count()), &events,
                          &error)) {
      TPRM_LOG(Warn) << "tprmd event loop: " << error;
      events.clear();
    }
    for (const auto& event : events) {
      if (event.data == nullptr) {
        loop->wakeup.drain();
        processInbox(loop);
        continue;
      }
      auto* conn = static_cast<Connection*>(event.data);
      if (conn->closed) continue;
      if (event.hangup) {
        // Connection torn down both ways: salvage any frames already in
        // the kernel buffer, then drop it.
        if (!loop->draining) handleReadable(loop, conn);
        if (!conn->closed) closeConnection(loop, conn);
        continue;
      }
      if (event.writable) flushOut(loop, conn);
      if (conn->closed) continue;
      if (event.readable && !loop->draining) handleReadable(loop, conn);
    }
    reap();
    const auto now = Clock::now();
    if (!loop->draining &&
        now - loop->lastSweep >= std::chrono::milliseconds(250)) {
      loop->lastSweep = now;
      sweepIdle(loop);
      reap();
    }
    if (loop->finishing) {
      bool allFlushed = true;
      for (const auto& [id, conn] : loop->conns) {
        if (!conn->closed && conn->outBytes > 0) {
          allFlushed = false;
          break;
        }
      }
      if (allFlushed || now >= loop->finishDeadline) {
        for (auto& [id, conn] : loop->conns) {
          if (!conn->closed) closeConnection(loop, conn.get());
        }
        reap();
        return;
      }
    }
  }
}

void NegotiationServer::processInbox(Loop* loop) {
  std::vector<net::Socket> conns;
  std::vector<ResponseMsg> responses;
  std::vector<std::uint64_t> resumes;
  bool drainRequested = false;
  bool finishRequested = false;
  {
    std::lock_guard<std::mutex> lock(loop->inboxMu);
    conns.swap(loop->pendingConns);
    responses.swap(loop->pendingResponses);
    resumes.swap(loop->pendingResumes);
    drainRequested = loop->drainRequested;
    finishRequested = loop->finishRequested;
  }
  for (auto& socket : conns) registerConnection(loop, std::move(socket));
  // Append every response of the batch to its connection's buffer first,
  // then flush each touched connection once: one write syscall per
  // connection per batch instead of one per response.
  std::vector<Connection*> touched;
  for (auto& msg : responses) {
    const auto it = loop->conns.find(msg.connId);
    if (it == loop->conns.end() || it->second->closed) {
      if (msg.push) {
        // Reshape events have no reader anymore; the moves themselves are
        // committed arbitrator state either way.
        reshapeEventsDropped_.fetch_add(msg.events.size());
        std::lock_guard<std::mutex> lock(originMu_);
        for (const auto& event : msg.events) originByJob_.erase(event.jobId);
        continue;
      }
      // Client vanished between submitting and reading the decision.  The
      // command already executed atomically; state stays consistent.
      disconnectsMidRequest_.fetch_add(1);
      continue;
    }
    Connection* conn = it->second.get();
    if (msg.push) {
      // Unsolicited notification: consumes no in-flight slot.  v2 peers
      // get a RESHAPED push frame; v1 peers buffer until a RESHAPES poll.
      if (conn->v2) {
        Response response;
        response.ok = true;
        ReshapesResult result;
        result.push = true;
        result.events = std::move(msg.events);
        response.result = std::move(result);
        stampWindow(&response);
        deliverResponse(loop, conn, kUnordered, encodeResponse(response));
      } else {
        for (auto& event : msg.events) {
          if (conn->reshapes.size() >= config_.reshapeEventBuffer) {
            conn->reshapes.pop_front();
            reshapeEventsDropped_.fetch_add(1);
          }
          conn->reshapes.push_back(std::move(event));
        }
      }
      if (std::find(touched.begin(), touched.end(), conn) == touched.end()) {
        touched.push_back(conn);
      }
      continue;
    }
    if (conn->inFlight > 0) --conn->inFlight;
    deliverResponse(loop, conn, msg.deliverSeq, msg.payload);
    if (std::find(touched.begin(), touched.end(), conn) == touched.end()) {
      touched.push_back(conn);
    }
  }
  for (Connection* conn : touched) flushOut(loop, conn);
  for (const auto connId : resumes) {
    const auto it = loop->conns.find(connId);
    if (it == loop->conns.end() || it->second->closed) continue;
    Connection* conn = it->second.get();
    if (!conn->readPaused || loop->draining) continue;
    conn->readPaused = false;
    updateInterest(loop, conn);
    // Frames decoded before the pause are still buffered; process them
    // first — the level-triggered read interest covers the rest.
    processDecodedFrames(loop, conn);
  }
  if (drainRequested && !loop->draining) {
    loop->draining = true;
    for (auto& [id, conn] : loop->conns) {
      if (!conn->closed) updateInterest(loop, conn.get());
    }
    drainAcks_.fetch_add(1);
  }
  if (finishRequested && !loop->finishing) {
    loop->finishing = true;
    loop->finishDeadline = Clock::now() + config_.ioTimeout;
  }
}

void NegotiationServer::registerConnection(Loop* loop, net::Socket socket) {
  if (loop->draining) {
    // Raced with shutdown: the acceptor counted it, but the loop will
    // never read from it.  Close; the client sees a clean EOF.
    activeSessions_.fetch_sub(1);
    return;
  }
  auto conn = std::make_unique<Connection>();
  conn->id = nextConnId_.fetch_add(1, std::memory_order_relaxed);
  conn->socket = std::move(socket);
  conn->decoder = net::FrameDecoder(frameLimits_);
  conn->lastActivity = Clock::now();
  (void)conn->socket.setNonBlocking(true);
  std::string error;
  if (!loop->epoll.add(conn->socket.fd(), net::Epoll::kRead, conn.get(),
                       &error)) {
    TPRM_LOG(Warn) << "tprmd register connection: " << error;
    activeSessions_.fetch_sub(1);
    return;
  }
  if (sessionsActive_ != nullptr) sessionsActive_->add(1);
  loop->conns.emplace(conn->id, std::move(conn));
}

void NegotiationServer::handleReadable(Loop* loop, Connection* conn) {
  char buffer[65536];
  // Read until WouldBlock, bounded per event so one firehose connection
  // cannot starve the rest of the loop (level-triggered epoll re-fires).
  for (int round = 0; round < 8; ++round) {
    if (conn->closed || conn->closing || conn->readPaused || loop->draining) {
      return;
    }
    const auto chunk = conn->socket.readSome(buffer, sizeof buffer);
    if (chunk.status == net::IoStatus::WouldBlock) return;
    if (chunk.status == net::IoStatus::Ok) {
      conn->decoder.feed(buffer, chunk.bytes);
      conn->lastActivity = Clock::now();
      processDecodedFrames(loop, conn);
      continue;
    }
    if (chunk.status == net::IoStatus::Closed) {
      // EOF.  Bytes of an unfinished frame mean the peer truncated the
      // stream mid-message.
      if (conn->decoder.pendingBytes() > 0 && !conn->decoder.failed()) {
        framesMalformed_.fetch_add(1);
      }
      closeConnection(loop, conn);
      return;
    }
    TPRM_LOG(Warn) << "tprmd connection read: " << chunk.message;
    closeConnection(loop, conn);
    return;
  }
}

void NegotiationServer::processDecodedFrames(Loop* loop, Connection* conn) {
  std::string payload;
  while (!conn->closed && !conn->closing && !conn->readPaused &&
         conn->decoder.next(&payload)) {
    handleFrame(loop, conn, payload);
  }
  if (!conn->closed && !conn->closing && conn->decoder.failed()) {
    framesOversized_.fetch_add(1);
    // The declared payload is never buffered, so the stream is desynced:
    // answer best-effort, then drop the connection once the error flushes.
    conn->closing = true;
    updateInterest(loop, conn);
    deliverResponse(
        loop, conn, kUnordered,
        encodeResponse(
            makeError(0, "frame_too_large", conn->decoder.message())));
  }
  // Inline responses generated while handling this batch of frames (HELLO
  // grants, busy/bad_request errors) leave in one flush.
  flushOut(loop, conn);
}

void NegotiationServer::handleFrame(Loop* loop, Connection* conn,
                                    const std::string& payload) {
  auto decoded = decodeRequest(payload);
  if (!decoded.ok()) {
    // The stream itself is intact (whole frame consumed): report and keep
    // the connection.  Correlation id 0 marks an undecodable request.
    framesMalformed_.fetch_add(1);
    const auto response =
        encodeResponse(makeError(0, "bad_request", decoded.error));
    deliverResponse(loop, conn,
                    conn->v2 ? kUnordered : conn->nextSubmitSeq++, response);
    return;
  }
  Request request = std::move(*decoded.request);

  if (request.command == Command::Hello) {
    Response response;
    if (conn->sawFrame) {
      response = makeError(request.id, "bad_request",
                           "HELLO must be the first frame on a connection");
    } else {
      conn->sawFrame = true;
      conn->v2 = true;
      const auto& hello = std::get<HelloRequest>(request.payload);
      const auto cap = static_cast<std::uint32_t>(std::min<std::size_t>(
          std::max<std::size_t>(config_.maxInFlightPerConnection, 1),
          ~std::uint32_t{0}));
      conn->window = std::max<std::uint32_t>(
          1, std::min<std::uint32_t>(hello.window, cap));
      helloHandshakes_.fetch_add(1);
      response.id = request.id;
      response.ok = true;
      response.result = HelloResult{kProtocolVersionV2, conn->window};
    }
    deliverResponse(loop, conn,
                    conn->v2 ? kUnordered : conn->nextSubmitSeq++,
                    encodeResponse(response));
    return;
  }

  conn->sawFrame = true;
  if (request.command == Command::Reshapes) {
    // Answered inline on the loop thread — the buffered events live in
    // loop-owned connection state.  Consumes no in-flight slot.
    Response response;
    response.id = request.id;
    response.ok = true;
    ReshapesResult result;
    result.events.assign(std::make_move_iterator(conn->reshapes.begin()),
                         std::make_move_iterator(conn->reshapes.end()));
    conn->reshapes.clear();
    response.result = std::move(result);
    stampWindow(&response);
    deliverResponse(loop, conn,
                    conn->v2 ? kUnordered : conn->nextSubmitSeq++,
                    encodeResponse(response));
    return;
  }
  if (conn->v2) {
    // The honoured window shrinks with shard-queue pressure so pipelined
    // clients throttle before the queues actually fill.
    const std::uint32_t effective =
        std::min(conn->window, dynamicWindowNow());
    if (conn->inFlight >= effective) {
      busyRejections_.fetch_add(1);
      Response busy = makeError(request.id, "busy",
                                "in-flight window exceeded; retry");
      busy.advertisedWindow = effective;
      deliverResponse(loop, conn, kUnordered, encodeResponse(busy));
      return;
    }
  }

  auto command = std::make_shared<PendingCommand>();
  command->request = std::move(request);
  command->loopIndex = loop->index;
  command->connId = conn->id;
  command->deliverSeq = conn->v2 ? kUnordered : conn->nextSubmitSeq;
  const EnqueueStatus status = enqueue(command, conn->v2);
  switch (status) {
    case EnqueueStatus::Busy: {
      busyRejections_.fetch_add(1);
      Response busy = makeError(command->request.id, "busy",
                                "command queue full; retry");
      busy.advertisedWindow = std::min(conn->window, dynamicWindowNow());
      deliverResponse(loop, conn, kUnordered, encodeResponse(busy));
      return;
    }
    case EnqueueStatus::Closed: {
      const auto response = encodeResponse(
          makeError(command->request.id, "shutting_down",
                    "server is draining; retry elsewhere"));
      deliverResponse(loop, conn,
                      conn->v2 ? kUnordered : conn->nextSubmitSeq++,
                      response);
      conn->closing = true;
      updateInterest(loop, conn);
      flushOut(loop, conn);
      return;
    }
    case EnqueueStatus::OkThrottle:
      conn->readPaused = true;
      updateInterest(loop, conn);
      [[fallthrough]];
    case EnqueueStatus::Ok:
      if (!conn->v2) ++conn->nextSubmitSeq;
      ++conn->inFlight;
      return;
  }
}

void NegotiationServer::deliverResponse(Loop* loop, Connection* conn,
                                        std::uint64_t deliverSeq,
                                        const std::string& payload) {
  if (conn->closed) return;
  auto append = [&](const std::string& encoded) {
    std::string framed;
    const auto wrote = net::appendFrame(framed, encoded, frameLimits_);
    if (!wrote.ok()) {
      // A response over the frame limit cannot be sent; the stream would
      // desync if we dropped it silently mid-sequence, so drop the
      // connection (mirrors the blocking server's failed writeFrame).
      if (conn->inFlight == 0) disconnectsMidRequest_.fetch_add(1);
      closeConnection(loop, conn);
      return false;
    }
    conn->outBytes += framed.size();
    conn->outq.push_back(std::move(framed));
    return true;
  };
  if (deliverSeq == kUnordered) {
    if (!append(payload)) return;
  } else if (deliverSeq == conn->nextDeliverSeq) {
    if (!append(payload)) return;
    ++conn->nextDeliverSeq;
    auto it = conn->held.find(conn->nextDeliverSeq);
    while (it != conn->held.end()) {
      if (!append(it->second)) return;
      conn->held.erase(it);
      ++conn->nextDeliverSeq;
      it = conn->held.find(conn->nextDeliverSeq);
    }
  } else {
    // Out-of-order completion on a v1 connection: park until the earlier
    // responses have been written.
    conn->held[deliverSeq] = payload;
  }
  // No flush here: callers batch — appends accumulate and the caller
  // flushes each touched connection once per event/inbox batch.
}

void NegotiationServer::flushOut(Loop* loop, Connection* conn) {
  if (conn->closed) return;
  const bool drained = conn->inFlight == 0 && conn->held.empty();
  while (conn->outBytes > 0) {
    // Scatter-gather over the queued frames: one sendmsg covers up to
    // kMaxIov frames with no coalescing copy.
    std::array<iovec, kMaxIov> iov;
    int iovcnt = 0;
    std::size_t off = conn->outOff;
    for (const auto& frame : conn->outq) {
      if (iovcnt == kMaxIov) break;
      iov[static_cast<std::size_t>(iovcnt)].iov_base =
          const_cast<char*>(frame.data() + off);
      iov[static_cast<std::size_t>(iovcnt)].iov_len = frame.size() - off;
      ++iovcnt;
      off = 0;
    }
    const auto chunk = conn->socket.writevSome(iov.data(), iovcnt);
    if (chunk.bytes > 0) {
      conn->outBytes -= chunk.bytes;
      conn->lastActivity = Clock::now();
      std::size_t consumed = chunk.bytes;
      while (consumed > 0) {
        const std::size_t remain = conn->outq.front().size() - conn->outOff;
        if (consumed >= remain) {
          consumed -= remain;
          conn->outq.pop_front();
          conn->outOff = 0;
        } else {
          // Partial frame: resume mid-string on the next writable event.
          conn->outOff += consumed;
          consumed = 0;
        }
      }
    }
    if (chunk.status == net::IoStatus::Ok) continue;
    if (chunk.status == net::IoStatus::WouldBlock) {
      if (!conn->wantWrite) {
        conn->wantWrite = true;
        updateInterest(loop, conn);
      }
      return;
    }
    // Closed/Error with responses pending: the client vanished.  In-flight
    // commands will surface as orphaned responses and are counted there.
    if (conn->inFlight == 0) disconnectsMidRequest_.fetch_add(1);
    closeConnection(loop, conn);
    return;
  }
  if (conn->wantWrite) {
    conn->wantWrite = false;
    updateInterest(loop, conn);
  }
  if (conn->closing && drained) closeConnection(loop, conn);
}

void NegotiationServer::updateInterest(Loop* loop, Connection* conn) {
  if (conn->closed) return;
  std::uint32_t interest = 0;
  if (!conn->readPaused && !conn->closing && !loop->draining) {
    interest |= net::Epoll::kRead;
  }
  if (conn->wantWrite) interest |= net::Epoll::kWrite;
  std::string error;
  if (!loop->epoll.modify(conn->socket.fd(), interest, conn, &error)) {
    TPRM_LOG(Warn) << "tprmd epoll modify: " << error;
  }
}

void NegotiationServer::closeConnection(Loop* loop, Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  loop->epoll.remove(conn->socket.fd());
  conn->socket.close();
  if (sessionsActive_ != nullptr) sessionsActive_->add(-1);
  activeSessions_.fetch_sub(1);
  loop->doomed.push_back(conn->id);
}

void NegotiationServer::sweepIdle(Loop* loop) {
  if (config_.idleTimeout.count() <= 0) return;
  const auto now = Clock::now();
  for (auto& [id, conn] : loop->conns) {
    Connection* c = conn.get();
    if (c->closed || c->closing || c->readPaused) continue;
    if (c->inFlight > 0 || c->outBytes > 0) continue;
    if (now - c->lastActivity > config_.idleTimeout) {
      closeConnection(loop, c);
    }
  }
}

// --- Queue handoff ---------------------------------------------------------

NegotiationServer::EnqueueStatus NegotiationServer::enqueue(
    const std::shared_ptr<PendingCommand>& command, bool allowBusy) {
  std::lock_guard<std::mutex> seqLock(seqMutex_);
  if (queueClosed_.load()) return EnqueueStatus::Closed;
  // Route before committing anything: a negotiation's job id — the next to
  // be reserved, peeked here — fixes its home shard; cancels follow the
  // job's home shard so cancel-after-negotiate pairs stay ordered;
  // machine-wide commands serialise through queue 0.
  std::size_t target = 0;
  const bool isNegotiate = command->request.command == Command::Negotiate;
  if (isNegotiate) {
    target = static_cast<std::size_t>(
        arbitrator_.homeShard(arbitrator_.peekNextJobId()));
  } else if (command->request.command == Command::Cancel) {
    target = static_cast<std::size_t>(arbitrator_.homeShard(
        std::get<CancelRequest>(command->request.payload).jobId));
  }
  auto& queue = *queues_[target];
  if (allowBusy &&
      queue.impl->approxDepth() >= config_.commandQueueCapacity) {
    // v2 backpressure: refuse before drawing a sequence number or job id,
    // so the wire trace and the replayed id stream only ever contain
    // commands that executed.  approxDepth is exact on the producer side —
    // every push happens under seqMutex_, held here.
    return EnqueueStatus::Busy;
  }
  const std::uint64_t seq = nextArrivalSeq_++;
  command->arrivalSeq = seq;
  if (isNegotiate) command->presetJobId = arbitrator_.reserveJobId();
  if (isNegotiate && config_.reshapePolicy != nullptr) {
    // Remember who negotiated this job so later reshape moves can be
    // routed back to its connection.  Entries die on CANCEL or when a
    // dispatch finds the connection gone.
    std::lock_guard<std::mutex> originLock(originMu_);
    originByJob_[*command->presetJobId] = {command->loopIndex,
                                           command->connId};
  }
  if (traceWriter_.isOpen()) {
    // Re-encode through the canonical codec rather than echoing the client's
    // bytes: replay then decodes exactly what the server decoded, and the
    // file stays well-formed regardless of client-side formatting.
    WireTraceRecord record;
    record.arrivalSeq = seq;
    const std::int64_t nowNs = obs::monotonicNanos();
    record.deltaNanos = lastRecordNs_ == 0
                            ? 0
                            : static_cast<std::uint64_t>(
                                  nowNs - lastRecordNs_);
    lastRecordNs_ = nowNs;
    record.payload = encodeRequest(command->request);
    std::string traceError;
    if (!traceWriter_.append(record, &traceError)) {
      // Recording is observability, not control: a failing disk must not
      // take the negotiation service down.  Stop recording, keep serving.
      TPRM_LOG(Warn) << "wire trace append failed (recording stops): "
                     << traceError;
      (void)traceWriter_.close(nullptr);
    }
  }
  if (trace_ != nullptr) command->enqueuedNs = obs::monotonicNanos();
  const auto pushed = queue.impl->push(command, /*refuseAtCapacity=*/false);
  if (pushed.status == qos::QueuePush::Closed) {
    // Unreachable in practice — close happens under seqMutex_, checked at
    // entry — but the contract allows it, so don't mislead the caller.
    return EnqueueStatus::Closed;
  }
  if (queue.depth != nullptr) {
    // Sample the depth the push itself observed (not a later re-read): the
    // high-water gauge then sees every peak even when the worker drains a
    // whole batch before the next enqueue (the undercount bugfix).
    queue.depth->set(static_cast<std::int64_t>(pushed.depth));
  }
  EnqueueStatus status = EnqueueStatus::Ok;
  if (!allowBusy && pushed.status == qos::QueuePush::OkAtCapacity) {
    // v1 backpressure: the command is in (order preserved), but the
    // connection must stop producing until the worker drains the queue.
    {
      std::lock_guard<std::mutex> lock(queue.throttledMu);
      queue.throttled.emplace_back(command->loopIndex, command->connId);
    }
    status = EnqueueStatus::OkThrottle;
    // Lost-resume closure: the worker flushes `throttled` only on drains
    // that leave the queue under capacity, and it may have drained this
    // very command before the registration above landed — then nothing
    // would ever resume the connection.  Each side writes before it reads
    // (we publish the entry, then re-read depth; the worker drains, then
    // reads the list), so at least one observes the other: either the
    // worker saw our entry and resumes, or we see the drained queue here
    // and retract the pause before it starts.  A resume racing this
    // retraction is discarded by the loop's !readPaused guard.
    if (queue.impl->approxDepth() < config_.commandQueueCapacity) {
      std::lock_guard<std::mutex> lock(queue.throttledMu);
      const auto entry =
          std::make_pair(command->loopIndex, command->connId);
      const auto it = std::find(queue.throttled.begin(),
                                queue.throttled.end(), entry);
      if (it != queue.throttled.end()) queue.throttled.erase(it);
      status = EnqueueStatus::Ok;
    }
  }
  return status;
}

void NegotiationServer::workerLoop(int shard) {
  auto& own = *queues_[static_cast<std::size_t>(shard)];
  std::vector<std::shared_ptr<PendingCommand>> batch;
  std::vector<std::pair<int, std::uint64_t>> resumes;
  std::vector<std::vector<ResponseMsg>> perLoop(loops_.size());
  const bool stealing =
      config_.queueKind == qos::QueueKind::Steal && queues_.size() > 1;
  for (;;) {
    if (drainAndExecute(&own, &batch, &resumes, &perLoop)) continue;
    if (stealing) {
      // Idle: help the deepest sibling instead of sleeping.  Claiming its
      // consumer token — and holding it across execution — keeps that
      // shard's commands in arrivalSeq order even though a foreign worker
      // runs them, which is what lets stealing absorb queue imbalance
      // without touching the arbitrator's spill logic.
      std::size_t deepest = 0;
      int victim = -1;
      for (std::size_t k = 0; k < queues_.size(); ++k) {
        if (static_cast<int>(k) == shard) continue;
        const std::size_t d = queues_[k]->impl->approxDepth();
        if (d > deepest) {
          deepest = d;
          victim = static_cast<int>(k);
        }
      }
      if (victim >= 0 &&
          drainAndExecute(queues_[static_cast<std::size_t>(victim)].get(),
                          &batch, &resumes, &perLoop)) {
        batchesStolen_.fetch_add(1);
        continue;
      }
    }
    if (own.impl->closed() && own.impl->approxDepth() == 0) return;
    // Steal mode polls so an idle worker notices sibling depth; otherwise
    // sleep until a producer or close() wakes this queue.
    own.impl->waitNonEmpty(stealing ? std::chrono::milliseconds(1)
                                    : qos::kWaitForever);
  }
}

bool NegotiationServer::drainAndExecute(
    ShardQueue* queue, std::vector<std::shared_ptr<PendingCommand>>* batchPtr,
    std::vector<std::pair<int, std::uint64_t>>* resumesPtr,
    std::vector<std::vector<ResponseMsg>>* perLoopPtr) {
  auto& batch = *batchPtr;
  auto& resumes = *resumesPtr;
  auto& perLoop = *perLoopPtr;
  if (!queue->impl->tryClaimConsumer()) return false;
  batch.clear();
  resumes.clear();
  // Batched handoff: one claim drains up to workerBatch commands (FIFO, so
  // drain order == arrivalSeq order per shard).
  const std::size_t n = queue->impl->tryDrainUpTo(config_.workerBatch, &batch);
  if (n == 0) {
    queue->impl->releaseConsumer();
    return false;
  }
  const std::size_t depthNow = queue->impl->approxDepth();
  if (queue->depth != nullptr) {
    queue->depth->set(static_cast<std::int64_t>(depthNow));
  }
  if (depthNow < config_.commandQueueCapacity) {
    std::lock_guard<std::mutex> lock(queue->throttledMu);
    if (!queue->throttled.empty()) resumes.swap(queue->throttled);
  }
  // Wake paused readers before the (comparatively slow) execution pass.
  for (const auto& [loopIndex, connId] : resumes) {
    auto& loop = *loops_[static_cast<std::size_t>(loopIndex)];
    {
      std::lock_guard<std::mutex> lock(loop.inboxMu);
      loop.pendingResumes.push_back(connId);
    }
    loop.wakeup.signal();
  }
  if (config_.workerSeamForTest) config_.workerSeamForTest();
  for (const auto& command : batch) {
    const std::int64_t startNs = trace_ != nullptr ? obs::monotonicNanos() : 0;
    std::vector<qos::QualityMove> moves;
    Response response = execute(command->request, command->arrivalSeq,
                                command->presetJobId, &moves);
    response.id = command->request.id;
    stampWindow(&response);
    commandsExecuted_.fetch_add(1);
    if (trace_ != nullptr) recordSpan(*command, response, startNs);
    ResponseMsg msg;
    msg.connId = command->connId;
    msg.deliverSeq = command->deliverSeq;
    msg.payload = encodeResponse(response);
    perLoop[static_cast<std::size_t>(command->loopIndex)].push_back(
        std::move(msg));
    // Route each committed quality move to the connection that
    // negotiated the moved job (it may be this command's own connection
    // or any other).  Moves with no reachable owner are dropped — the
    // arbitrator state is committed regardless.
    for (const auto& move : moves) {
      std::pair<int, std::uint64_t> origin;
      {
        std::lock_guard<std::mutex> originLock(originMu_);
        const auto it = originByJob_.find(move.jobId);
        if (it == originByJob_.end()) {
          reshapeEventsDropped_.fetch_add(1);
          continue;
        }
        origin = it->second;
      }
      ReshapeEvent event;
      event.jobId = move.jobId;
      event.promotion = move.promotion;
      event.fromChain = move.fromChain;
      event.toChain = move.toChain;
      event.fromQuality = move.fromQuality;
      event.toQuality = move.toQuality;
      event.placements = move.schedule.placements;
      ResponseMsg pushMsg;
      pushMsg.connId = origin.second;
      pushMsg.deliverSeq = kUnordered;
      pushMsg.push = true;
      pushMsg.events.push_back(std::move(event));
      reshapeEventsDispatched_.fetch_add(1);
      perLoop[static_cast<std::size_t>(origin.first)].push_back(
          std::move(pushMsg));
    }
  }
  // One inbox lock + one eventfd wakeup per loop per batch.
  for (std::size_t i = 0; i < perLoop.size(); ++i) {
    if (perLoop[i].empty()) continue;
    auto& loop = *loops_[i];
    {
      std::lock_guard<std::mutex> lock(loop.inboxMu);
      for (auto& msg : perLoop[i]) {
        loop.pendingResponses.push_back(std::move(msg));
      }
    }
    loop.wakeup.signal();
    perLoop[i].clear();
  }
  // Release only after execution: the claim token is what serialises
  // per-shard execution across owner and thieves.
  queue->impl->releaseConsumer();
  return true;
}

void NegotiationServer::rebalanceLoop() {
  const auto interval = std::chrono::milliseconds(config_.rebalanceIntervalMs);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stopping_) {
    std::this_thread::sleep_for(std::min(kPollSlice, interval));
    if (std::chrono::steady_clock::now() < next) continue;
    next = std::chrono::steady_clock::now() + interval;
    (void)arbitrator_.rebalance(arbitrator_.clock());
  }
}

void NegotiationServer::recordSpan(const PendingCommand& command,
                                   const Response& response,
                                   std::int64_t startNs) {
  obs::TraceSpan span;
  span.name = toString(command.request.command);
  span.queuedNs = command.enqueuedNs;
  span.startNs = startNs;
  span.endNs = obs::monotonicNanos();
  span.requestId = command.request.id;
  span.arrivalSeq = command.arrivalSeq;
  span.ok = response.ok;
  if (const auto* result = std::get_if<NegotiateResult>(&response.result)) {
    span.jobId = result->jobId;
    span.ok = result->admitted;
    if (result->admitted) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "chain=%zu quality=%.3f",
                    result->chainIndex, result->quality);
      span.detail = detail;
    } else {
      span.detail = "rejected";
    }
  } else if (!response.ok && response.error.has_value()) {
    span.detail = response.error->code;
  }
  queueWaitUs_->record(span.queueWaitUs());
  executeUs_->record(span.executeUs());
  trace_->record(std::move(span));
}

std::uint32_t NegotiationServer::dynamicWindowNow() const {
  std::size_t depth = 0;
  for (const auto& queue : queues_) {
    depth = std::max(depth, queue->impl->approxDepth());
  }
  const auto full = static_cast<std::uint32_t>(std::min<std::size_t>(
      std::max<std::size_t>(config_.maxInFlightPerConnection, 1),
      ~std::uint32_t{0}));
  return adaptiveWindow(depth, config_.commandQueueCapacity, full);
}

void NegotiationServer::stampWindow(Response* response) const {
  const auto full = static_cast<std::uint32_t>(std::min<std::size_t>(
      std::max<std::size_t>(config_.maxInFlightPerConnection, 1),
      ~std::uint32_t{0}));
  const std::uint32_t dynamic = dynamicWindowNow();
  // Stamp only under pressure: unpressured responses stay byte-identical
  // to pre-adaptive servers, and clients restore their granted window on
  // the first unstamped response.
  if (dynamic < full) response->advertisedWindow = dynamic;
}

Response NegotiationServer::execute(
    const Request& request, std::uint64_t arrivalSeq,
    const std::optional<std::uint64_t>& presetJobId,
    std::vector<qos::QualityMove>* moves) {
  Response response;
  response.ok = true;
  switch (request.command) {
    case Command::Negotiate: {
      const auto& payload = std::get<NegotiateRequest>(request.payload);
      const std::uint64_t jobId = presetJobId.value();
      // Wire clients are not clock-synchronized with the arbitrator; a
      // release behind the (monotone) negotiation clock means "now".
      Time effectiveRelease = payload.release;
      const auto decision = arbitrator_.submit(jobId, payload.spec,
                                               payload.release,
                                               &effectiveRelease, moves);
      NegotiateResult result;
      result.admitted = decision.admitted;
      result.jobId = jobId;
      result.arrivalSeq = arrivalSeq;
      result.release = effectiveRelease;
      result.chainsConsidered = decision.chainsConsidered;
      result.chainsSchedulable = decision.chainsSchedulable;
      if (decision.admitted) {
        result.chainIndex = decision.schedule.chainIndex;
        result.quality = decision.quality;
        result.placements = decision.schedule.placements;
        result.bindings =
            payload.spec.chains[decision.schedule.chainIndex].bindings;
      }
      response.result = std::move(result);
      return response;
    }
    case Command::Cancel: {
      const auto& payload = std::get<CancelRequest>(request.payload);
      CancelResult result;
      result.freedTicks = arbitrator_.cancel(payload.jobId, moves);
      if (config_.reshapePolicy != nullptr) {
        std::lock_guard<std::mutex> originLock(originMu_);
        originByJob_.erase(payload.jobId);
      }
      response.result = result;
      return response;
    }
    case Command::Resize: {
      const auto& payload = std::get<ResizeRequest>(request.payload);
      if (payload.processors <= 0) {
        return makeError(request.id, "bad_request",
                         "RESIZE requires processors >= 1");
      }
      if (payload.processors < config_.shards) {
        return makeError(request.id, "bad_request",
                         "RESIZE requires at least one processor per shard");
      }
      const Time when = std::max(payload.when, arbitrator_.clock());
      const auto report = arbitrator_.resize(payload.processors, when);
      ResizeResult result;
      result.processorsBefore = report.processorsBefore;
      result.processorsAfter = report.processorsAfter;
      result.kept = report.kept;
      result.reconfigured = report.reconfigured;
      result.dropped = report.dropped;
      response.result = std::move(result);
      return response;
    }
    case Command::Stats: {
      StatsResult result;
      result.processors = arbitrator_.processors();
      result.clock = arbitrator_.clock();
      result.admitted = arbitrator_.admittedCount();
      result.rejected = arbitrator_.rejectedCount();
      result.commandsExecuted = commandsExecuted_.load() + 1;  // incl. this
      result.shards = config_.shards;
      response.result = result;
      return response;
    }
    case Command::Verify: {
      const auto report = arbitrator_.verify();
      VerifyResult result;
      result.ok = report.ok;
      result.firstViolation = report.firstViolation;
      result.violations = report.violations;
      response.result = std::move(result);
      return response;
    }
    case Command::Hello:
      // Handshakes are handled on the loop thread and never enqueued.
      return makeError(request.id, "internal",
                       "HELLO reached the command queue");
    case Command::Reshapes:
      // Polls drain loop-owned buffers and are answered inline, like HELLO.
      return makeError(request.id, "internal",
                       "RESHAPES reached the command queue");
  }
  return makeError(request.id, "internal", "unhandled command");
}

}  // namespace tprm::service
