#include "service/server.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace tprm::service {

namespace {

/// Accept/idle poll granularity: how quickly threads notice stopping_.
constexpr std::chrono::milliseconds kPollSlice{50};

qos::ShardedOptions shardedOptions(const ServerConfig& config) {
  qos::ShardedOptions options;
  options.shards = config.shards;
  options.greedy = config.options;
  options.spill = config.shardSpill;
  return options;
}

}  // namespace

/// One decoded command travelling from a session to a worker thread.
struct NegotiationServer::PendingCommand {
  Request request;
  std::uint64_t arrivalSeq = 0;
  /// Global job id reserved at enqueue (NEGOTIATE only): fixes the home
  /// shard before the command is queued.
  std::optional<std::uint64_t> presetJobId;
  /// Stamped at enqueue when observability is on (0 otherwise).
  std::int64_t enqueuedNs = 0;
  std::promise<Response> promise;
};

struct NegotiationServer::Session {
  net::Socket socket;
  std::thread thread;
  std::atomic<bool> done{false};
};

/// One shard's bounded command queue and the worker draining it.
struct NegotiationServer::ShardQueue {
  std::mutex mu;
  std::condition_variable notEmpty;
  std::condition_variable notFull;
  std::deque<std::shared_ptr<PendingCommand>> queue;
  /// "server.queue_depth" (shards == 1) / "server.queue_depth.shard<k>".
  obs::Gauge* depth = nullptr;
  std::thread worker;
};

NegotiationServer::NegotiationServer(ServerConfig config)
    : config_(std::move(config)),
      frameLimits_{config_.maxFrameBytes},
      arbitrator_(config_.processors, shardedOptions(config_)) {
  queues_.reserve(static_cast<std::size_t>(config_.shards));
  for (int k = 0; k < config_.shards; ++k) {
    queues_.push_back(std::make_unique<ShardQueue>());
  }
  if (config_.observability) {
    registry_ = std::make_unique<obs::MetricsRegistry>();
    // With one shard the metric names match the unsharded server exactly;
    // with K the per-shard bundles get a shard suffix and the cross-shard
    // events (spill, rebalance) their own bundle.
    std::vector<obs::NegotiationMetrics*> perShard;
    for (int k = 0; k < config_.shards; ++k) {
      const std::string prefix =
          config_.shards == 1 ? "arbitrator"
                              : "arbitrator.shard" + std::to_string(k);
      negotiation_.push_back(std::make_unique<obs::NegotiationMetrics>(
          obs::NegotiationMetrics::fromRegistry(*registry_, prefix)));
      perShard.push_back(negotiation_.back().get());
      queues_[static_cast<std::size_t>(k)]->depth = &registry_->gauge(
          config_.shards == 1 ? "server.queue_depth"
                              : "server.queue_depth.shard" +
                                    std::to_string(k));
    }
    if (config_.shards > 1) {
      shardedMetrics_ = std::make_unique<obs::ShardedMetrics>(
          obs::ShardedMetrics::fromRegistry(*registry_, "sharded"));
    }
    arbitrator_.attachMetrics(std::move(perShard), shardedMetrics_.get());
    trace_ = std::make_unique<obs::TraceRing>(
        std::max<std::size_t>(config_.traceCapacity, 1));
    sessionsActive_ = &registry_->gauge("server.sessions_active");
    queueWaitUs_ = &obs::latencyHistogram(*registry_, "server.queue_wait_us");
    executeUs_ = &obs::latencyHistogram(*registry_, "server.execute_us");
  }
}

NegotiationServer::~NegotiationServer() { stop(); }

bool NegotiationServer::start(std::string* error) {
  TPRM_CHECK(!started_, "start() called twice");
  std::string firstError;
  if (!config_.recordPath.empty() &&
      !traceWriter_.open(config_.recordPath, &firstError)) {
    if (error != nullptr) *error = "record-out: " + firstError;
    return false;
  }
  if (!config_.unixPath.empty()) {
    unixListener_ = net::Listener::listenUnix(config_.unixPath, &firstError);
    if (!unixListener_.valid()) {
      if (error != nullptr) *error = firstError;
      return false;
    }
  }
  if (config_.tcpPort.has_value()) {
    tcpListener_ = net::Listener::listenTcp(*config_.tcpPort, &firstError);
    if (!tcpListener_.valid()) {
      if (error != nullptr) *error = firstError;
      return false;
    }
    boundTcpPort_ = tcpListener_.boundPort();
  }
  if (!unixListener_.valid() && !tcpListener_.valid()) {
    if (error != nullptr) {
      *error = "no listener configured (set unixPath and/or tcpPort)";
    }
    return false;
  }
  started_ = true;
  for (int k = 0; k < config_.shards; ++k) {
    queues_[static_cast<std::size_t>(k)]->worker =
        std::thread([this, k] { workerLoop(k); });
  }
  if (config_.shards > 1 && config_.rebalanceIntervalMs > 0) {
    rebalanceThread_ = std::thread([this] { rebalanceLoop(); });
  }
  if (unixListener_.valid()) {
    acceptThreads_.emplace_back([this] { acceptLoop(&unixListener_); });
  }
  if (tcpListener_.valid()) {
    acceptThreads_.emplace_back([this] { acceptLoop(&tcpListener_); });
  }
  return true;
}

void NegotiationServer::stop() {
  if (!started_ || stopped_.exchange(true)) return;
  stopping_ = true;

  // 1. Stop admitting connections.
  for (auto& thread : acceptThreads_) thread.join();
  acceptThreads_.clear();
  unixListener_.close();
  tcpListener_.close();
  if (rebalanceThread_.joinable()) rebalanceThread_.join();

  // 2. Let every session finish its in-flight request.  The workers keep
  // draining their queues meanwhile, so sessions blocked on a response (or
  // on backpressure) always make progress.
  {
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
    }
    sessions_.clear();
  }

  // 3. No producers remain: close the queues and join each worker after it
  // has executed everything already admitted.  seqMutex_ serialises the
  // close against any straggling enqueue.
  {
    std::lock_guard<std::mutex> lock(seqMutex_);
    queueClosed_.store(true);
  }
  for (auto& queue : queues_) {
    {
      std::lock_guard<std::mutex> lock(queue->mu);
    }
    queue->notEmpty.notify_all();
    queue->notFull.notify_all();
  }
  for (auto& queue : queues_) {
    if (queue->worker.joinable()) queue->worker.join();
  }

  // 4. Sessions and workers are gone; flush the wire trace, if any.
  if (traceWriter_.isOpen()) {
    std::string traceError;
    if (!traceWriter_.close(&traceError)) {
      TPRM_LOG(Warn) << "wire trace close failed: " << traceError;
    }
  }
}

ServerCounters NegotiationServer::counters() const {
  ServerCounters counters;
  counters.connectionsAccepted = connectionsAccepted_.load();
  counters.connectionsRefused = connectionsRefused_.load();
  counters.framesMalformed = framesMalformed_.load();
  counters.framesOversized = framesOversized_.load();
  counters.commandsExecuted = commandsExecuted_.load();
  counters.disconnectsMidRequest = disconnectsMidRequest_.load();
  return counters;
}

JsonValue NegotiationServer::observabilitySnapshot() const {
  const ServerCounters server = counters();
  JsonValue::Object serverObject;
  serverObject["connections_accepted"] =
      static_cast<double>(server.connectionsAccepted);
  serverObject["connections_refused"] =
      static_cast<double>(server.connectionsRefused);
  serverObject["frames_malformed"] =
      static_cast<double>(server.framesMalformed);
  serverObject["frames_oversized"] =
      static_cast<double>(server.framesOversized);
  serverObject["commands_executed"] =
      static_cast<double>(server.commandsExecuted);
  serverObject["disconnects_mid_request"] =
      static_cast<double>(server.disconnectsMidRequest);

  JsonValue::Object root;
  root["enabled"] = registry_ != nullptr;
  root["server"] = JsonValue(std::move(serverObject));
  if (registry_ != nullptr) {
    // Graft the registry snapshot's sections in at top level.
    const JsonValue metrics = registry_->snapshot();
    for (const auto& [key, value] : metrics.asObject()) root[key] = value;
    root["spans"] = trace_->snapshot();
  }
  return JsonValue(std::move(root));
}

void NegotiationServer::reapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessionsMutex_);
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void NegotiationServer::acceptLoop(net::Listener* listener) {
  while (!stopping_) {
    auto accepted = listener->accept(net::Deadline::after(kPollSlice));
    if (accepted.status == net::IoStatus::Timeout) continue;
    if (accepted.status != net::IoStatus::Ok) {
      if (!stopping_) {
        TPRM_LOG(Warn) << "tprmd accept failed: " << accepted.message;
      }
      continue;
    }
    reapFinishedSessions();
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    if (stopping_ || sessions_.size() >= config_.maxSessions) {
      // Refuse politely: the socket closes without a frame; clients see a
      // clean EOF before any response.
      connectionsRefused_.fetch_add(1);
      continue;
    }
    connectionsAccepted_.fetch_add(1);
    if (sessionsActive_ != nullptr) sessionsActive_->add(1);
    auto session = std::make_unique<Session>();
    session->socket = std::move(accepted.socket);
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    raw->thread = std::thread([this, raw] { sessionLoop(raw); });
  }
}

void NegotiationServer::sessionLoop(Session* session) {
  net::Socket& socket = session->socket;
  auto idleStart = std::chrono::steady_clock::now();
  bool keepServing = true;
  while (keepServing && !stopping_) {
    // Idle wait in short slices so stop() and the idle timeout are both
    // honoured without consuming stream bytes.
    const auto readable = socket.waitReadable(net::Deadline::after(kPollSlice));
    if (readable.status == net::IoStatus::Timeout) {
      if (std::chrono::steady_clock::now() - idleStart >
          config_.idleTimeout) {
        break;
      }
      continue;
    }
    if (readable.status != net::IoStatus::Ok) break;

    // Data (or EOF) is ready; one io budget covers the whole frame.
    const auto ioDeadline = net::Deadline::after(config_.ioTimeout);
    auto frame = net::readFrame(socket, frameLimits_, ioDeadline, ioDeadline);
    if (frame.status == net::FrameStatus::Closed) break;
    if (frame.status == net::FrameStatus::TooLarge) {
      framesOversized_.fetch_add(1);
      // The declared payload is never read, so the stream is desynced:
      // answer best-effort, then drop the connection.
      const auto response = encodeResponse(
          makeError(0, "frame_too_large", frame.message));
      (void)net::writeFrame(socket, response, frameLimits_,
                            net::Deadline::after(config_.ioTimeout));
      break;
    }
    if (!frame.ok()) {
      // Truncated or timed-out mid-frame: desynced, close.
      framesMalformed_.fetch_add(1);
      break;
    }

    auto decoded = decodeRequest(frame.payload);
    if (!decoded.ok()) {
      // The stream itself is intact (whole frame consumed): report and keep
      // the connection.  Correlation id 0 marks an undecodable request.
      framesMalformed_.fetch_add(1);
      const auto response =
          encodeResponse(makeError(0, "bad_request", decoded.error));
      if (!net::writeFrame(socket, response, frameLimits_,
                           net::Deadline::after(config_.ioTimeout))
               .ok()) {
        break;
      }
      idleStart = std::chrono::steady_clock::now();
      continue;
    }

    auto command = std::make_shared<PendingCommand>();
    command->request = std::move(*decoded.request);
    const std::uint64_t requestId = command->request.id;
    auto future = command->promise.get_future();
    const auto seq = enqueue(std::move(command));
    Response response;
    if (!seq.has_value()) {
      response = makeError(requestId, "shutting_down",
                           "server is draining; retry elsewhere");
      keepServing = false;
    } else {
      // The workers always fulfil admitted commands, including during
      // drain, so this wait is bounded by the queue length.
      response = future.get();
    }
    const auto encoded = encodeResponse(response);
    if (!net::writeFrame(socket, encoded, frameLimits_,
                         net::Deadline::after(config_.ioTimeout))
             .ok()) {
      // Client vanished between submitting and reading the decision.  The
      // command already executed atomically; state stays consistent.
      disconnectsMidRequest_.fetch_add(1);
      break;
    }
    idleStart = std::chrono::steady_clock::now();
  }
  socket.close();
  if (sessionsActive_ != nullptr) sessionsActive_->add(-1);
  session->done.store(true);
}

std::optional<std::uint64_t> NegotiationServer::enqueue(
    std::shared_ptr<PendingCommand> command) {
  std::lock_guard<std::mutex> seqLock(seqMutex_);
  if (queueClosed_.load()) return std::nullopt;
  const std::uint64_t seq = nextArrivalSeq_++;
  command->arrivalSeq = seq;
  if (traceWriter_.isOpen()) {
    // Re-encode through the canonical codec rather than echoing the client's
    // bytes: replay then decodes exactly what the server decoded, and the
    // file stays well-formed regardless of client-side formatting.
    WireTraceRecord record;
    record.arrivalSeq = seq;
    const std::int64_t nowNs = obs::monotonicNanos();
    record.deltaNanos = lastRecordNs_ == 0
                            ? 0
                            : static_cast<std::uint64_t>(
                                  nowNs - lastRecordNs_);
    lastRecordNs_ = nowNs;
    record.payload = encodeRequest(command->request);
    std::string traceError;
    if (!traceWriter_.append(record, &traceError)) {
      // Recording is observability, not control: a failing disk must not
      // take the negotiation service down.  Stop recording, keep serving.
      TPRM_LOG(Warn) << "wire trace append failed (recording stops): "
                     << traceError;
      (void)traceWriter_.close(nullptr);
    }
  }
  // Route: a negotiation's job id — reserved here, in arrival order — fixes
  // its home shard; cancels follow the job's home shard so cancel-after-
  // negotiate pairs stay ordered; machine-wide commands serialise through
  // queue 0.
  std::size_t target = 0;
  if (command->request.command == Command::Negotiate) {
    command->presetJobId = arbitrator_.reserveJobId();
    target = static_cast<std::size_t>(
        arbitrator_.homeShard(*command->presetJobId));
  } else if (command->request.command == Command::Cancel) {
    target = static_cast<std::size_t>(arbitrator_.homeShard(
        std::get<CancelRequest>(command->request.payload).jobId));
  }
  auto& queue = *queues_[target];
  std::unique_lock<std::mutex> lock(queue.mu);
  // Backpressure with seqMutex_ held: later arrivals cannot overtake this
  // command into the same queue, so per-queue order == arrivalSeq order.
  // queueClosed_ cannot flip during the wait (stop() needs seqMutex_), so
  // the workers draining the queue are the only exit.
  queue.notFull.wait(lock, [&] {
    return queue.queue.size() < config_.commandQueueCapacity;
  });
  if (trace_ != nullptr) command->enqueuedNs = obs::monotonicNanos();
  queue.queue.push_back(std::move(command));
  if (queue.depth != nullptr) {
    queue.depth->set(static_cast<std::int64_t>(queue.queue.size()));
  }
  lock.unlock();
  queue.notEmpty.notify_one();
  return seq;
}

void NegotiationServer::workerLoop(int shard) {
  auto& queue = *queues_[static_cast<std::size_t>(shard)];
  for (;;) {
    std::shared_ptr<PendingCommand> command;
    {
      std::unique_lock<std::mutex> lock(queue.mu);
      queue.notEmpty.wait(lock, [&] {
        return !queue.queue.empty() || queueClosed_.load();
      });
      if (queue.queue.empty()) return;  // closed and drained
      command = std::move(queue.queue.front());
      queue.queue.pop_front();
      if (queue.depth != nullptr) {
        queue.depth->set(static_cast<std::int64_t>(queue.queue.size()));
      }
    }
    queue.notFull.notify_one();
    const std::int64_t startNs =
        trace_ != nullptr ? obs::monotonicNanos() : 0;
    Response response = execute(command->request, command->arrivalSeq,
                                command->presetJobId);
    response.id = command->request.id;
    commandsExecuted_.fetch_add(1);
    if (trace_ != nullptr) recordSpan(*command, response, startNs);
    command->promise.set_value(std::move(response));
  }
}

void NegotiationServer::rebalanceLoop() {
  const auto interval = std::chrono::milliseconds(config_.rebalanceIntervalMs);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stopping_) {
    std::this_thread::sleep_for(std::min(kPollSlice, interval));
    if (std::chrono::steady_clock::now() < next) continue;
    next = std::chrono::steady_clock::now() + interval;
    (void)arbitrator_.rebalance(arbitrator_.clock());
  }
}

void NegotiationServer::recordSpan(const PendingCommand& command,
                                   const Response& response,
                                   std::int64_t startNs) {
  obs::TraceSpan span;
  span.name = toString(command.request.command);
  span.queuedNs = command.enqueuedNs;
  span.startNs = startNs;
  span.endNs = obs::monotonicNanos();
  span.requestId = command.request.id;
  span.arrivalSeq = command.arrivalSeq;
  span.ok = response.ok;
  if (const auto* result = std::get_if<NegotiateResult>(&response.result)) {
    span.jobId = result->jobId;
    span.ok = result->admitted;
    if (result->admitted) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "chain=%zu quality=%.3f",
                    result->chainIndex, result->quality);
      span.detail = detail;
    } else {
      span.detail = "rejected";
    }
  } else if (!response.ok && response.error.has_value()) {
    span.detail = response.error->code;
  }
  queueWaitUs_->record(span.queueWaitUs());
  executeUs_->record(span.executeUs());
  trace_->record(std::move(span));
}

Response NegotiationServer::execute(
    const Request& request, std::uint64_t arrivalSeq,
    const std::optional<std::uint64_t>& presetJobId) {
  Response response;
  response.ok = true;
  switch (request.command) {
    case Command::Negotiate: {
      const auto& payload = std::get<NegotiateRequest>(request.payload);
      const std::uint64_t jobId = presetJobId.value();
      // Wire clients are not clock-synchronized with the arbitrator; a
      // release behind the (monotone) negotiation clock means "now".
      Time effectiveRelease = payload.release;
      const auto decision = arbitrator_.submit(jobId, payload.spec,
                                               payload.release,
                                               &effectiveRelease);
      NegotiateResult result;
      result.admitted = decision.admitted;
      result.jobId = jobId;
      result.arrivalSeq = arrivalSeq;
      result.release = effectiveRelease;
      result.chainsConsidered = decision.chainsConsidered;
      result.chainsSchedulable = decision.chainsSchedulable;
      if (decision.admitted) {
        result.chainIndex = decision.schedule.chainIndex;
        result.quality = decision.quality;
        result.placements = decision.schedule.placements;
        result.bindings =
            payload.spec.chains[decision.schedule.chainIndex].bindings;
      }
      response.result = std::move(result);
      return response;
    }
    case Command::Cancel: {
      const auto& payload = std::get<CancelRequest>(request.payload);
      CancelResult result;
      result.freedTicks = arbitrator_.cancel(payload.jobId);
      response.result = result;
      return response;
    }
    case Command::Resize: {
      const auto& payload = std::get<ResizeRequest>(request.payload);
      if (payload.processors <= 0) {
        return makeError(request.id, "bad_request",
                         "RESIZE requires processors >= 1");
      }
      if (payload.processors < config_.shards) {
        return makeError(request.id, "bad_request",
                         "RESIZE requires at least one processor per shard");
      }
      const Time when = std::max(payload.when, arbitrator_.clock());
      const auto report = arbitrator_.resize(payload.processors, when);
      ResizeResult result;
      result.processorsBefore = report.processorsBefore;
      result.processorsAfter = report.processorsAfter;
      result.kept = report.kept;
      result.reconfigured = report.reconfigured;
      result.dropped = report.dropped;
      response.result = std::move(result);
      return response;
    }
    case Command::Stats: {
      StatsResult result;
      result.processors = arbitrator_.processors();
      result.clock = arbitrator_.clock();
      result.admitted = arbitrator_.admittedCount();
      result.rejected = arbitrator_.rejectedCount();
      result.commandsExecuted = commandsExecuted_.load() + 1;  // incl. this
      result.shards = config_.shards;
      response.result = result;
      return response;
    }
    case Command::Verify: {
      const auto report = arbitrator_.verify();
      VerifyResult result;
      result.ok = report.ok;
      result.firstViolation = report.firstViolation;
      result.violations = report.violations;
      response.result = std::move(result);
      return response;
    }
  }
  return makeError(request.id, "internal", "unhandled command");
}

}  // namespace tprm::service
