#include "service/server.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace tprm::service {

namespace {

/// Accept/idle poll granularity: how quickly threads notice stopping_.
constexpr std::chrono::milliseconds kPollSlice{50};

}  // namespace

/// One decoded command travelling from a session to the arbitrator thread.
struct NegotiationServer::PendingCommand {
  Request request;
  std::uint64_t arrivalSeq = 0;
  /// Stamped at enqueue when observability is on (0 otherwise).
  std::int64_t enqueuedNs = 0;
  std::promise<Response> promise;
};

struct NegotiationServer::Session {
  net::Socket socket;
  std::thread thread;
  std::atomic<bool> done{false};
};

NegotiationServer::NegotiationServer(ServerConfig config)
    : config_(std::move(config)),
      frameLimits_{config_.maxFrameBytes},
      arbitrator_(config_.processors, config_.options) {
  if (config_.observability) {
    registry_ = std::make_unique<obs::MetricsRegistry>();
    negotiation_ = std::make_unique<obs::NegotiationMetrics>(
        obs::NegotiationMetrics::fromRegistry(*registry_, "arbitrator"));
    arbitrator_.attachMetrics(negotiation_.get());
    trace_ = std::make_unique<obs::TraceRing>(
        std::max<std::size_t>(config_.traceCapacity, 1));
    queueDepth_ = &registry_->gauge("server.queue_depth");
    sessionsActive_ = &registry_->gauge("server.sessions_active");
    queueWaitUs_ = &obs::latencyHistogram(*registry_, "server.queue_wait_us");
    executeUs_ = &obs::latencyHistogram(*registry_, "server.execute_us");
  }
}

NegotiationServer::~NegotiationServer() { stop(); }

bool NegotiationServer::start(std::string* error) {
  TPRM_CHECK(!started_, "start() called twice");
  std::string firstError;
  if (!config_.unixPath.empty()) {
    unixListener_ = net::Listener::listenUnix(config_.unixPath, &firstError);
    if (!unixListener_.valid()) {
      if (error != nullptr) *error = firstError;
      return false;
    }
  }
  if (config_.tcpPort.has_value()) {
    tcpListener_ = net::Listener::listenTcp(*config_.tcpPort, &firstError);
    if (!tcpListener_.valid()) {
      if (error != nullptr) *error = firstError;
      return false;
    }
    boundTcpPort_ = tcpListener_.boundPort();
  }
  if (!unixListener_.valid() && !tcpListener_.valid()) {
    if (error != nullptr) {
      *error = "no listener configured (set unixPath and/or tcpPort)";
    }
    return false;
  }
  started_ = true;
  arbitratorThread_ = std::thread([this] { arbitratorLoop(); });
  if (unixListener_.valid()) {
    acceptThreads_.emplace_back([this] { acceptLoop(&unixListener_); });
  }
  if (tcpListener_.valid()) {
    acceptThreads_.emplace_back([this] { acceptLoop(&tcpListener_); });
  }
  return true;
}

void NegotiationServer::stop() {
  if (!started_ || stopped_.exchange(true)) return;
  stopping_ = true;

  // 1. Stop admitting connections.
  for (auto& thread : acceptThreads_) thread.join();
  acceptThreads_.clear();
  unixListener_.close();
  tcpListener_.close();

  // 2. Let every session finish its in-flight request.  The arbitrator
  // thread keeps draining the queue meanwhile, so sessions blocked on a
  // response (or on backpressure) always make progress.
  {
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
    }
    sessions_.clear();
  }

  // 3. No producers remain: close the queue and join the arbitrator after
  // it has executed everything already admitted.
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    queueClosed_ = true;
  }
  queueNotEmpty_.notify_all();
  queueNotFull_.notify_all();
  arbitratorThread_.join();
}

ServerCounters NegotiationServer::counters() const {
  ServerCounters counters;
  counters.connectionsAccepted = connectionsAccepted_.load();
  counters.connectionsRefused = connectionsRefused_.load();
  counters.framesMalformed = framesMalformed_.load();
  counters.framesOversized = framesOversized_.load();
  counters.commandsExecuted = commandsExecutedShared_.load();
  counters.disconnectsMidRequest = disconnectsMidRequest_.load();
  return counters;
}

JsonValue NegotiationServer::observabilitySnapshot() const {
  const ServerCounters server = counters();
  JsonValue::Object serverObject;
  serverObject["connections_accepted"] =
      static_cast<double>(server.connectionsAccepted);
  serverObject["connections_refused"] =
      static_cast<double>(server.connectionsRefused);
  serverObject["frames_malformed"] =
      static_cast<double>(server.framesMalformed);
  serverObject["frames_oversized"] =
      static_cast<double>(server.framesOversized);
  serverObject["commands_executed"] =
      static_cast<double>(server.commandsExecuted);
  serverObject["disconnects_mid_request"] =
      static_cast<double>(server.disconnectsMidRequest);

  JsonValue::Object root;
  root["enabled"] = registry_ != nullptr;
  root["server"] = JsonValue(std::move(serverObject));
  if (registry_ != nullptr) {
    // Graft the registry snapshot's sections in at top level.
    const JsonValue metrics = registry_->snapshot();
    for (const auto& [key, value] : metrics.asObject()) root[key] = value;
    root["spans"] = trace_->snapshot();
  }
  return JsonValue(std::move(root));
}

void NegotiationServer::reapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessionsMutex_);
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void NegotiationServer::acceptLoop(net::Listener* listener) {
  while (!stopping_) {
    auto accepted = listener->accept(net::Deadline::after(kPollSlice));
    if (accepted.status == net::IoStatus::Timeout) continue;
    if (accepted.status != net::IoStatus::Ok) {
      if (!stopping_) {
        TPRM_LOG(Warn) << "tprmd accept failed: " << accepted.message;
      }
      continue;
    }
    reapFinishedSessions();
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    if (stopping_ || sessions_.size() >= config_.maxSessions) {
      // Refuse politely: the socket closes without a frame; clients see a
      // clean EOF before any response.
      connectionsRefused_.fetch_add(1);
      continue;
    }
    connectionsAccepted_.fetch_add(1);
    if (sessionsActive_ != nullptr) sessionsActive_->add(1);
    auto session = std::make_unique<Session>();
    session->socket = std::move(accepted.socket);
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    raw->thread = std::thread([this, raw] { sessionLoop(raw); });
  }
}

void NegotiationServer::sessionLoop(Session* session) {
  net::Socket& socket = session->socket;
  auto idleStart = std::chrono::steady_clock::now();
  bool keepServing = true;
  while (keepServing && !stopping_) {
    // Idle wait in short slices so stop() and the idle timeout are both
    // honoured without consuming stream bytes.
    const auto readable = socket.waitReadable(net::Deadline::after(kPollSlice));
    if (readable.status == net::IoStatus::Timeout) {
      if (std::chrono::steady_clock::now() - idleStart >
          config_.idleTimeout) {
        break;
      }
      continue;
    }
    if (readable.status != net::IoStatus::Ok) break;

    // Data (or EOF) is ready; one io budget covers the whole frame.
    const auto ioDeadline = net::Deadline::after(config_.ioTimeout);
    auto frame = net::readFrame(socket, frameLimits_, ioDeadline, ioDeadline);
    if (frame.status == net::FrameStatus::Closed) break;
    if (frame.status == net::FrameStatus::TooLarge) {
      framesOversized_.fetch_add(1);
      // The declared payload is never read, so the stream is desynced:
      // answer best-effort, then drop the connection.
      const auto response = encodeResponse(
          makeError(0, "frame_too_large", frame.message));
      (void)net::writeFrame(socket, response, frameLimits_,
                            net::Deadline::after(config_.ioTimeout));
      break;
    }
    if (!frame.ok()) {
      // Truncated or timed-out mid-frame: desynced, close.
      framesMalformed_.fetch_add(1);
      break;
    }

    auto decoded = decodeRequest(frame.payload);
    if (!decoded.ok()) {
      // The stream itself is intact (whole frame consumed): report and keep
      // the connection.  Correlation id 0 marks an undecodable request.
      framesMalformed_.fetch_add(1);
      const auto response =
          encodeResponse(makeError(0, "bad_request", decoded.error));
      if (!net::writeFrame(socket, response, frameLimits_,
                           net::Deadline::after(config_.ioTimeout))
               .ok()) {
        break;
      }
      idleStart = std::chrono::steady_clock::now();
      continue;
    }

    auto command = std::make_shared<PendingCommand>();
    command->request = std::move(*decoded.request);
    const std::uint64_t requestId = command->request.id;
    auto future = command->promise.get_future();
    const auto seq = enqueue(std::move(command));
    Response response;
    if (!seq.has_value()) {
      response = makeError(requestId, "shutting_down",
                           "server is draining; retry elsewhere");
      keepServing = false;
    } else {
      // The arbitrator thread always fulfils admitted commands, including
      // during drain, so this wait is bounded by the queue length.
      response = future.get();
    }
    const auto encoded = encodeResponse(response);
    if (!net::writeFrame(socket, encoded, frameLimits_,
                         net::Deadline::after(config_.ioTimeout))
             .ok()) {
      // Client vanished between submitting and reading the decision.  The
      // command already executed atomically; state stays consistent.
      disconnectsMidRequest_.fetch_add(1);
      break;
    }
    idleStart = std::chrono::steady_clock::now();
  }
  socket.close();
  if (sessionsActive_ != nullptr) sessionsActive_->add(-1);
  session->done.store(true);
}

std::optional<std::uint64_t> NegotiationServer::enqueue(
    std::shared_ptr<PendingCommand> command) {
  std::unique_lock<std::mutex> lock(queueMutex_);
  queueNotFull_.wait(lock, [this] {
    return queue_.size() < config_.commandQueueCapacity || queueClosed_;
  });
  if (queueClosed_) return std::nullopt;
  const std::uint64_t seq = nextArrivalSeq_++;
  command->arrivalSeq = seq;
  if (trace_ != nullptr) command->enqueuedNs = obs::monotonicNanos();
  queue_.push_back(std::move(command));
  if (queueDepth_ != nullptr) {
    queueDepth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  lock.unlock();
  queueNotEmpty_.notify_one();
  return seq;
}

void NegotiationServer::arbitratorLoop() {
  for (;;) {
    std::shared_ptr<PendingCommand> command;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueNotEmpty_.wait(lock,
                          [this] { return !queue_.empty() || queueClosed_; });
      if (queue_.empty()) return;  // closed and drained
      command = std::move(queue_.front());
      queue_.pop_front();
      if (queueDepth_ != nullptr) {
        queueDepth_->set(static_cast<std::int64_t>(queue_.size()));
      }
    }
    queueNotFull_.notify_one();
    const std::int64_t startNs =
        trace_ != nullptr ? obs::monotonicNanos() : 0;
    Response response = execute(command->request, command->arrivalSeq);
    response.id = command->request.id;
    ++commandsExecuted_;
    commandsExecutedShared_.store(commandsExecuted_);
    if (trace_ != nullptr) recordSpan(*command, response, startNs);
    command->promise.set_value(std::move(response));
  }
}

void NegotiationServer::recordSpan(const PendingCommand& command,
                                   const Response& response,
                                   std::int64_t startNs) {
  obs::TraceSpan span;
  span.name = toString(command.request.command);
  span.queuedNs = command.enqueuedNs;
  span.startNs = startNs;
  span.endNs = obs::monotonicNanos();
  span.requestId = command.request.id;
  span.arrivalSeq = command.arrivalSeq;
  span.ok = response.ok;
  if (const auto* result = std::get_if<NegotiateResult>(&response.result)) {
    span.jobId = result->jobId;
    span.ok = result->admitted;
    if (result->admitted) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "chain=%zu quality=%.3f",
                    result->chainIndex, result->quality);
      span.detail = detail;
    } else {
      span.detail = "rejected";
    }
  } else if (!response.ok && response.error.has_value()) {
    span.detail = response.error->code;
  }
  queueWaitUs_->record(span.queueWaitUs());
  executeUs_->record(span.executeUs());
  trace_->record(std::move(span));
}

Response NegotiationServer::execute(const Request& request,
                                    std::uint64_t arrivalSeq) {
  Response response;
  response.ok = true;
  switch (request.command) {
    case Command::Negotiate: {
      const auto& payload = std::get<NegotiateRequest>(request.payload);
      // Wire clients are not clock-synchronized with the arbitrator; a
      // release behind the (monotone) negotiation clock means "now".
      const Time release = std::max(payload.release, arbitrator_.clock());
      const auto decision = arbitrator_.submit(payload.spec, release);
      NegotiateResult result;
      result.admitted = decision.admitted;
      result.jobId = arbitrator_.lastJobId().value();
      result.arrivalSeq = arrivalSeq;
      result.release = release;
      result.chainsConsidered = decision.chainsConsidered;
      result.chainsSchedulable = decision.chainsSchedulable;
      if (decision.admitted) {
        result.chainIndex = decision.schedule.chainIndex;
        result.quality = decision.quality;
        result.placements = decision.schedule.placements;
        result.bindings =
            payload.spec.chains[decision.schedule.chainIndex].bindings;
      }
      response.result = std::move(result);
      return response;
    }
    case Command::Cancel: {
      const auto& payload = std::get<CancelRequest>(request.payload);
      CancelResult result;
      result.freedTicks = arbitrator_.cancel(payload.jobId);
      response.result = result;
      return response;
    }
    case Command::Resize: {
      const auto& payload = std::get<ResizeRequest>(request.payload);
      if (payload.processors <= 0) {
        return makeError(request.id, "bad_request",
                         "RESIZE requires processors >= 1");
      }
      const Time when = std::max(payload.when, arbitrator_.clock());
      const auto report = arbitrator_.resize(payload.processors, when);
      ResizeResult result;
      result.processorsBefore = report.processorsBefore;
      result.processorsAfter = report.processorsAfter;
      result.kept = report.kept;
      result.reconfigured = report.reconfigured;
      result.dropped = report.dropped;
      response.result = std::move(result);
      return response;
    }
    case Command::Stats: {
      StatsResult result;
      result.processors = arbitrator_.processors();
      result.clock = arbitrator_.clock();
      result.admitted = arbitrator_.admittedCount();
      result.rejected = arbitrator_.rejectedCount();
      result.commandsExecuted = commandsExecuted_ + 1;  // include this one
      response.result = result;
      return response;
    }
    case Command::Verify: {
      const auto report = arbitrator_.verify();
      VerifyResult result;
      result.ok = report.ok;
      result.firstViolation = report.firstViolation;
      result.violations = report.violations;
      response.result = std::move(result);
      return response;
    }
  }
  return makeError(request.id, "internal", "unhandled command");
}

}  // namespace tprm::service
