// Wire protocol of the negotiation service.
//
// Frames (net/frame.h) carry one JSON document each.  Requests:
//
//   {"v": 1, "id": 7, "cmd": "NEGOTIATE",
//    "release": 0.0,                  // paper units; clamped to the clock
//    "spec": { ...taskmodel/spec_io schema... }}
//   {"v": 1, "id": 8, "cmd": "CANCEL", "jobId": 3}
//   {"v": 1, "id": 9, "cmd": "RESIZE", "processors": 48, "when": 125.0}
//   {"v": 1, "id": 10, "cmd": "STATS"}
//   {"v": 1, "id": 11, "cmd": "VERIFY"}
//   {"v": 1, "id": 12, "cmd": "RESHAPES"}   // drain buffered reshape events
//
// Responses echo the request id:
//
//   {"id": 7, "ok": true, "result": {...}}
//   {"id": 7, "ok": false,
//    "error": {"code": "bad_request", "message": "..."}}
//
// Protocol v2 (docs/wire_protocol.md is the normative spec) keeps the same
// frame layout and JSON shapes but starts with a handshake and allows
// pipelining:
//
//   {"v": 2, "id": 1, "cmd": "HELLO", "window": 32}
//   -> {"id": 1, "ok": true, "cmd": "HELLO",
//       "result": {"version": 2, "window": 32}}
//
// After HELLO the connection may carry many in-flight requests (up to the
// negotiated window), each tagged with a client-chosen `id` (requestId);
// responses may arrive in any order and are correlated by that id.  A v1
// connection is simply one whose first frame is not HELLO: it keeps the
// strict one-request-one-response ordering, unchanged.
//
// All times cross the wire in paper units (doubles), matching spec_io;
// ticksFromUnits(unitsFromTicks(t)) == t for every time this service
// produces, so decisions survive the trip exactly.  Infinite deadlines are
// omitted.  Error codes are stable strings: bad_request, bad_spec,
// unknown_command, shutting_down, busy, internal.  `busy` is v2-only
// backpressure: the request was not executed (window exceeded or shard
// queue full) and may be retried.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/time.h"
#include "sched/arbitrator.h"
#include "taskmodel/chain.h"

namespace tprm::service {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Pipelined protocol: HELLO handshake, requestId-correlated out-of-order
/// responses, typed `busy` backpressure.
inline constexpr std::uint32_t kProtocolVersionV2 = 2;

enum class Command { Negotiate, Cancel, Resize, Stats, Verify, Hello, Reshapes };

[[nodiscard]] const char* toString(Command command);

struct NegotiateRequest {
  task::TunableJobSpec spec;
  Time release = 0;
};
struct CancelRequest {
  std::uint64_t jobId = 0;
};
struct ResizeRequest {
  int processors = 0;
  Time when = 0;
};
/// v2 handshake: must be the first frame on a connection that wants
/// pipelining.  `window` is the in-flight cap the client asks for; the
/// server grants min(window, its per-connection cap) in HelloResult.
struct HelloRequest {
  std::uint32_t window = 1;
};

struct Request {
  std::uint64_t id = 0;  // client-chosen correlation id, echoed verbatim
  /// Wire version this request was (or will be) encoded with.  v1 and v2
  /// frames are shape-identical apart from HELLO; servers accept both.
  std::uint32_t version = kProtocolVersion;
  Command command = Command::Stats;
  /// Payload; monostate for the parameterless commands (STATS, VERIFY).
  std::variant<std::monostate, NegotiateRequest, CancelRequest, ResizeRequest,
               HelloRequest>
      payload;
};

/// Result of a granted or rejected negotiation.  `arrivalSeq` is the
/// server-stamped arrival order (the order in which the single-writer queue
/// admitted the command) — replaying the same specs into an in-process
/// arbitrator in arrivalSeq order reproduces the decisions exactly.
struct NegotiateResult {
  bool admitted = false;
  std::uint64_t jobId = 0;
  std::uint64_t arrivalSeq = 0;
  std::size_t chainIndex = 0;
  double quality = 0.0;
  /// Release actually used (the request's release clamped to the clock).
  Time release = 0;
  std::vector<sched::TaskPlacement> placements;
  /// Control-parameter bindings of the granted chain (empty if none).
  std::map<std::string, std::int64_t> bindings;
  int chainsConsidered = 0;
  int chainsSchedulable = 0;
};

struct CancelResult {
  std::int64_t freedTicks = 0;
};

struct ResizeResult {
  int processorsBefore = 0;
  int processorsAfter = 0;
  std::vector<std::uint64_t> kept;
  std::vector<std::uint64_t> reconfigured;
  std::vector<std::uint64_t> dropped;
};

struct StatsResult {
  int processors = 0;
  Time clock = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// Total commands the arbitrator worker(s) have executed.
  std::uint64_t commandsExecuted = 0;
  /// Arbitrator shards serving this machine (1 = classic single-writer).
  /// Decoded tolerantly: responses from older servers default to 1.
  int shards = 1;
};

struct VerifyResult {
  bool ok = false;
  std::string firstViolation;
  int violations = 0;
};

/// Server's half of the v2 handshake: the granted protocol version and the
/// per-connection in-flight window actually in force.
struct HelloResult {
  std::uint32_t version = kProtocolVersionV2;
  std::uint32_t window = 1;
};

/// One committed elastic quality move (arbitrator-initiated renegotiation):
/// the job identified by `jobId` now runs chain `toChain` at `toQuality`.
/// Delivered to the connection that negotiated the job — as an unsolicited
/// RESHAPED push frame on v2 connections, or buffered until the next
/// RESHAPES poll on v1 connections.
struct ReshapeEvent {
  std::uint64_t jobId = 0;
  bool promotion = false;  // false = demotion
  std::size_t fromChain = 0;
  std::size_t toChain = 0;
  double fromQuality = 0.0;
  double toQuality = 0.0;
  /// The job's placements after the move.
  std::vector<sched::TaskPlacement> placements;
};

/// Reply to a RESHAPES poll (push == false) or an unsolicited RESHAPED
/// server push (push == true, v2 only, correlation id 0).
struct ReshapesResult {
  bool push = false;
  std::vector<ReshapeEvent> events;
};

struct ErrorInfo {
  std::string code;
  std::string message;
};

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::optional<ErrorInfo> error;  // set iff !ok
  /// Adaptive-window re-advertisement (top-level "window"): when the server
  /// is under queue pressure it stamps the in-flight window it currently
  /// honours on v2 responses and busy errors; clients shrink to
  /// min(granted, advertised) and restore on the first unstamped response.
  std::optional<std::uint32_t> advertisedWindow;
  std::variant<std::monostate, NegotiateResult, CancelResult, ResizeResult,
               StatsResult, VerifyResult, HelloResult, ReshapesResult>
      result;
};

// --- Codecs.  Encoding aborts only on programmer error (TPRM_CHECK);
// decoding never aborts: malformed wire input yields a descriptive error.

[[nodiscard]] std::string encodeRequest(const Request& request);
[[nodiscard]] std::string encodeResponse(const Response& response);

struct RequestParseResult {
  std::optional<Request> request;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return request.has_value(); }
};
[[nodiscard]] RequestParseResult decodeRequest(const std::string& text);

struct ResponseParseResult {
  std::optional<Response> response;
  std::string error;

  [[nodiscard]] bool ok() const { return response.has_value(); }
};
[[nodiscard]] ResponseParseResult decodeResponse(const std::string& text);

/// Builds an error response (helper shared by server paths).
[[nodiscard]] Response makeError(std::uint64_t id, std::string code,
                                 std::string message);

}  // namespace tprm::service
