// Wire protocol of the negotiation service.
//
// Frames (net/frame.h) carry one JSON document each.  Requests:
//
//   {"v": 1, "id": 7, "cmd": "NEGOTIATE",
//    "release": 0.0,                  // paper units; clamped to the clock
//    "spec": { ...taskmodel/spec_io schema... }}
//   {"v": 1, "id": 8, "cmd": "CANCEL", "jobId": 3}
//   {"v": 1, "id": 9, "cmd": "RESIZE", "processors": 48, "when": 125.0}
//   {"v": 1, "id": 10, "cmd": "STATS"}
//   {"v": 1, "id": 11, "cmd": "VERIFY"}
//
// Responses echo the request id:
//
//   {"id": 7, "ok": true, "result": {...}}
//   {"id": 7, "ok": false,
//    "error": {"code": "bad_request", "message": "..."}}
//
// All times cross the wire in paper units (doubles), matching spec_io;
// ticksFromUnits(unitsFromTicks(t)) == t for every time this service
// produces, so decisions survive the trip exactly.  Infinite deadlines are
// omitted.  Error codes are stable strings: bad_request, bad_spec,
// unknown_command, shutting_down, internal.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/time.h"
#include "sched/arbitrator.h"
#include "taskmodel/chain.h"

namespace tprm::service {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class Command { Negotiate, Cancel, Resize, Stats, Verify };

[[nodiscard]] const char* toString(Command command);

struct NegotiateRequest {
  task::TunableJobSpec spec;
  Time release = 0;
};
struct CancelRequest {
  std::uint64_t jobId = 0;
};
struct ResizeRequest {
  int processors = 0;
  Time when = 0;
};

struct Request {
  std::uint64_t id = 0;  // client-chosen correlation id, echoed verbatim
  Command command = Command::Stats;
  /// Payload; monostate for the parameterless commands (STATS, VERIFY).
  std::variant<std::monostate, NegotiateRequest, CancelRequest, ResizeRequest>
      payload;
};

/// Result of a granted or rejected negotiation.  `arrivalSeq` is the
/// server-stamped arrival order (the order in which the single-writer queue
/// admitted the command) — replaying the same specs into an in-process
/// arbitrator in arrivalSeq order reproduces the decisions exactly.
struct NegotiateResult {
  bool admitted = false;
  std::uint64_t jobId = 0;
  std::uint64_t arrivalSeq = 0;
  std::size_t chainIndex = 0;
  double quality = 0.0;
  /// Release actually used (the request's release clamped to the clock).
  Time release = 0;
  std::vector<sched::TaskPlacement> placements;
  /// Control-parameter bindings of the granted chain (empty if none).
  std::map<std::string, std::int64_t> bindings;
  int chainsConsidered = 0;
  int chainsSchedulable = 0;
};

struct CancelResult {
  std::int64_t freedTicks = 0;
};

struct ResizeResult {
  int processorsBefore = 0;
  int processorsAfter = 0;
  std::vector<std::uint64_t> kept;
  std::vector<std::uint64_t> reconfigured;
  std::vector<std::uint64_t> dropped;
};

struct StatsResult {
  int processors = 0;
  Time clock = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// Total commands the arbitrator worker(s) have executed.
  std::uint64_t commandsExecuted = 0;
  /// Arbitrator shards serving this machine (1 = classic single-writer).
  /// Decoded tolerantly: responses from older servers default to 1.
  int shards = 1;
};

struct VerifyResult {
  bool ok = false;
  std::string firstViolation;
  int violations = 0;
};

struct ErrorInfo {
  std::string code;
  std::string message;
};

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::optional<ErrorInfo> error;  // set iff !ok
  std::variant<std::monostate, NegotiateResult, CancelResult, ResizeResult,
               StatsResult, VerifyResult>
      result;
};

// --- Codecs.  Encoding aborts only on programmer error (TPRM_CHECK);
// decoding never aborts: malformed wire input yields a descriptive error.

[[nodiscard]] std::string encodeRequest(const Request& request);
[[nodiscard]] std::string encodeResponse(const Response& response);

struct RequestParseResult {
  std::optional<Request> request;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return request.has_value(); }
};
[[nodiscard]] RequestParseResult decodeRequest(const std::string& text);

struct ResponseParseResult {
  std::optional<Response> response;
  std::string error;

  [[nodiscard]] bool ok() const { return response.has_value(); }
};
[[nodiscard]] ResponseParseResult decodeResponse(const std::string& text);

/// Builds an error response (helper shared by server paths).
[[nodiscard]] Response makeError(std::uint64_t id, std::string code,
                                 std::string message);

}  // namespace tprm::service
