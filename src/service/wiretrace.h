// Wire-traffic trace files: durable record/replay of the request stream.
//
// `tprmd --record-out=PATH` appends every request frame the server admits
// (after decode, at enqueue time — so the file order IS arrivalSeq order) to
// a binary trace.  tools/tprm_replay drives a recorded trace back into a
// fresh in-process arbitrator or a live daemon and checks the decisions are
// identical, which turns any captured production stream into a regression
// test.
//
// File layout (little-endian throughout; docs/trace_format.md is the
// normative description):
//
//   header   8 bytes  magic "TPRMWIRE"
//            4 bytes  u32 version (currently 1)
//            4 bytes  u32 reserved (zero)
//   record*  4 bytes  u32 payload length N (bounded by kMaxPayloadBytes)
//            8 bytes  u64 arrivalSeq (server-stamped arrival order)
//            8 bytes  u64 deltaNanos (monotonic-clock gap to the previous
//                     record; 0 for the first)
//            N bytes  payload — the canonical encodeRequest() JSON text
//            4 bytes  u32 FNV-1a checksum over arrivalSeq, deltaNanos and
//                     the payload bytes (in that order, little-endian)
//
// Reading never aborts and never silently drops data: every way a file can
// be damaged maps to a typed status (mirroring net/frame.h's FrameStatus
// discipline).  A version bump invalidates old readers loudly (BadVersion)
// instead of letting them misparse records.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tprm::service {

inline constexpr char kWireTraceMagic[8] = {'T', 'P', 'R', 'M',
                                            'W', 'I', 'R', 'E'};
inline constexpr std::uint32_t kWireTraceVersion = 1;
/// Per-record payload cap; larger declared lengths are rejected as TooLarge
/// before any allocation.  Matches the server's default frame cap.
inline constexpr std::uint32_t kWireTraceMaxPayloadBytes = 1u << 20;

/// Outcome of a read step.  Eof is the clean end-of-stream (file ends
/// exactly on a record boundary); everything after Eof is an error.
enum class WireTraceStatus {
  Ok,
  Eof,
  IoError,     ///< open/read syscall failure
  BadMagic,    ///< not a wire trace (or the header itself was damaged)
  BadVersion,  ///< a trace from an incompatible format revision
  Truncated,   ///< file ends mid-header or mid-record
  TooLarge,    ///< declared payload length exceeds kWireTraceMaxPayloadBytes
  Corrupt,     ///< checksum mismatch (bit rot / torn write)
};

[[nodiscard]] const char* toString(WireTraceStatus status);

/// One recorded request frame.
struct WireTraceRecord {
  std::uint64_t arrivalSeq = 0;
  /// Monotonic nanoseconds since the previous record (0 for the first);
  /// lets replay reproduce pacing without trusting wall clocks.
  std::uint64_t deltaNanos = 0;
  /// The request document exactly as encodeRequest() renders it.
  std::string payload;
};

/// Checksum the format stores per record (exposed for tests and tools).
[[nodiscard]] std::uint32_t wireTraceChecksum(const WireTraceRecord& record);

/// Append-only trace writer.  Not thread-safe; tprmd serialises appends
/// under its arrival-sequence lock, which also makes file order match
/// arrivalSeq order.
class WireTraceWriter {
 public:
  WireTraceWriter() = default;
  ~WireTraceWriter();

  WireTraceWriter(const WireTraceWriter&) = delete;
  WireTraceWriter& operator=(const WireTraceWriter&) = delete;

  /// Creates/truncates `path` and writes the header.  False (with *error
  /// set) on failure; the writer stays closed.
  [[nodiscard]] bool open(const std::string& path, std::string* error);

  /// Appends one record.  False on I/O failure or an over-cap payload.
  [[nodiscard]] bool append(const WireTraceRecord& record, std::string* error);

  /// Flushes and closes; returns false if the final flush failed.
  /// Idempotent.
  bool close(std::string* error);

  [[nodiscard]] bool isOpen() const { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t recordsWritten() const { return records_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
};

/// Result of reading one record.
struct WireTraceReadResult {
  WireTraceStatus status = WireTraceStatus::IoError;
  WireTraceRecord record;  ///< valid iff status == Ok
  std::string message;     ///< human-readable detail for errors

  [[nodiscard]] bool ok() const { return status == WireTraceStatus::Ok; }
};

/// Streaming reader.  Usage: open(), then next() until Eof (or an error —
/// after any non-Ok status the reader is done).
class WireTraceReader {
 public:
  WireTraceReader() = default;
  ~WireTraceReader();

  WireTraceReader(const WireTraceReader&) = delete;
  WireTraceReader& operator=(const WireTraceReader&) = delete;

  /// Opens `path` and validates the header.  Anything but Ok means no
  /// records can be read (*message gets the detail).
  [[nodiscard]] WireTraceStatus open(const std::string& path,
                                     std::string* message);

  [[nodiscard]] WireTraceReadResult next();

 private:
  std::FILE* file_ = nullptr;
};

/// Whole-file convenience: header + every record, or the first error.
/// `records` holds everything successfully read before the failure, so
/// callers can report how far a damaged file was readable.
struct WireTraceLoadResult {
  WireTraceStatus status = WireTraceStatus::IoError;
  std::vector<WireTraceRecord> records;
  std::string message;

  [[nodiscard]] bool ok() const { return status == WireTraceStatus::Eof; }
};

[[nodiscard]] WireTraceLoadResult loadWireTrace(const std::string& path);

}  // namespace tprm::service
