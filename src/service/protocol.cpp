#include "service/protocol.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "taskmodel/spec_io.h"

namespace tprm::service {

namespace {

// --- Encode helpers -------------------------------------------------------

JsonValue placementsToJson(const std::vector<sched::TaskPlacement>& ps) {
  JsonValue::Array array;
  for (const auto& p : ps) {
    JsonValue::Object o;
    o["begin"] = unitsFromTicks(p.interval.begin);
    o["end"] = unitsFromTicks(p.interval.end);
    o["processors"] = p.processors;
    if (p.deadline < kTimeInfinity) o["deadline"] = unitsFromTicks(p.deadline);
    array.emplace_back(std::move(o));
  }
  return JsonValue(std::move(array));
}

JsonValue idsToJson(const std::vector<std::uint64_t>& ids) {
  JsonValue::Array array;
  for (const auto id : ids) {
    array.emplace_back(static_cast<std::int64_t>(id));
  }
  return JsonValue(std::move(array));
}

// --- Decode helpers -------------------------------------------------------

/// Field cursor: remembers the first error so call sites stay linear.
class Reader {
 public:
  explicit Reader(const JsonValue& root) : root_(&root) {}

  [[nodiscard]] bool failed() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  double number(const char* key, bool required = true, double fallback = 0) {
    const auto* v = root_->find(key);
    if (v == nullptr) {
      if (required) fail(std::string("missing field '") + key + "'");
      return fallback;
    }
    if (!v->isNumber()) {
      fail(std::string("field '") + key + "' must be a number");
      return fallback;
    }
    return v->asNumber();
  }

  std::uint64_t id(const char* key, bool required = true) {
    const double d = number(key, required);
    if (failed()) return 0;
    if (d < 0 || d != std::floor(d)) {
      fail(std::string("field '") + key + "' must be a non-negative integer");
      return 0;
    }
    return static_cast<std::uint64_t>(d);
  }

  std::string string(const char* key) {
    const auto* v = root_->find(key);
    if (v == nullptr || !v->isString()) {
      fail(std::string("field '") + key + "' must be a string");
      return {};
    }
    return v->asString();
  }

  bool boolean(const char* key) {
    const auto* v = root_->find(key);
    if (v == nullptr || !v->isBool()) {
      fail(std::string("field '") + key + "' must be a boolean");
      return false;
    }
    return v->asBool();
  }

  void fail(std::string what) {
    if (error_.empty()) error_ = std::move(what);
  }

 private:
  const JsonValue* root_;
  std::string error_;
};

bool placementsFromJson(const JsonValue* value,
                        std::vector<sched::TaskPlacement>* out,
                        std::string* error) {
  if (value == nullptr || !value->isArray()) {
    *error = "'placements' must be an array";
    return false;
  }
  for (const auto& item : value->asArray()) {
    if (!item.isObject()) {
      *error = "placement entries must be objects";
      return false;
    }
    Reader r(item);
    sched::TaskPlacement p;
    p.interval.begin = ticksFromUnits(r.number("begin"));
    p.interval.end = ticksFromUnits(r.number("end"));
    p.processors = static_cast<int>(r.number("processors"));
    const auto* deadline = item.find("deadline");
    p.deadline = deadline != nullptr && deadline->isNumber()
                     ? ticksFromUnits(deadline->asNumber())
                     : kTimeInfinity;
    if (r.failed()) {
      *error = r.error();
      return false;
    }
    out->push_back(p);
  }
  return true;
}

bool idsFromJson(const JsonValue* value, std::vector<std::uint64_t>* out,
                 std::string* error, const char* key) {
  if (value == nullptr || !value->isArray()) {
    *error = std::string("'") + key + "' must be an array";
    return false;
  }
  for (const auto& item : value->asArray()) {
    if (!item.isNumber()) {
      *error = std::string("'") + key + "' entries must be numbers";
      return false;
    }
    out->push_back(static_cast<std::uint64_t>(item.asNumber()));
  }
  return true;
}

}  // namespace

const char* toString(Command command) {
  switch (command) {
    case Command::Negotiate: return "NEGOTIATE";
    case Command::Cancel: return "CANCEL";
    case Command::Resize: return "RESIZE";
    case Command::Stats: return "STATS";
    case Command::Verify: return "VERIFY";
    case Command::Hello: return "HELLO";
    case Command::Reshapes: return "RESHAPES";
  }
  return "UNKNOWN";
}

std::string encodeRequest(const Request& request) {
  JsonValue::Object o;
  o["v"] = static_cast<std::int64_t>(request.version);
  o["id"] = static_cast<std::int64_t>(request.id);
  o["cmd"] = toString(request.command);
  switch (request.command) {
    case Command::Negotiate: {
      const auto& p = std::get<NegotiateRequest>(request.payload);
      o["release"] = unitsFromTicks(p.release);
      o["spec"] = task::toJsonValue(p.spec);
      break;
    }
    case Command::Cancel: {
      const auto& p = std::get<CancelRequest>(request.payload);
      o["jobId"] = static_cast<std::int64_t>(p.jobId);
      break;
    }
    case Command::Resize: {
      const auto& p = std::get<ResizeRequest>(request.payload);
      o["processors"] = p.processors;
      o["when"] = unitsFromTicks(p.when);
      break;
    }
    case Command::Hello: {
      const auto& p = std::get<HelloRequest>(request.payload);
      o["window"] = static_cast<std::int64_t>(p.window);
      break;
    }
    case Command::Stats:
    case Command::Verify:
    case Command::Reshapes:
      break;
  }
  return JsonValue(std::move(o)).dump();
}

RequestParseResult decodeRequest(const std::string& text) {
  RequestParseResult result;
  const auto parsed = parseJson(text);
  if (!parsed.ok()) {
    result.error = "JSON error at byte " + std::to_string(parsed.errorOffset) +
                   ": " + parsed.error;
    return result;
  }
  const JsonValue& root = *parsed.value;
  if (!root.isObject()) {
    result.error = "request must be an object";
    return result;
  }
  Reader r(root);
  Request request;
  const auto version = r.id("v");
  request.id = r.id("id");
  const auto cmd = r.string("cmd");
  if (r.failed()) {
    result.error = r.error();
    return result;
  }
  if (version != kProtocolVersion && version != kProtocolVersionV2) {
    result.error = "unsupported protocol version " + std::to_string(version);
    return result;
  }
  request.version = static_cast<std::uint32_t>(version);
  if (cmd == "NEGOTIATE") {
    request.command = Command::Negotiate;
    NegotiateRequest payload;
    payload.release = ticksFromUnits(r.number("release", false, 0.0));
    const auto* spec = root.find("spec");
    if (spec == nullptr) {
      result.error = "NEGOTIATE requires a 'spec' object";
      return result;
    }
    auto parsedSpec = task::jobSpecFromJsonValue(*spec);
    if (!parsedSpec.ok()) {
      result.error = "bad spec: " + parsedSpec.error;
      return result;
    }
    payload.spec = std::move(*parsedSpec.spec);
    request.payload = std::move(payload);
  } else if (cmd == "CANCEL") {
    request.command = Command::Cancel;
    CancelRequest payload;
    payload.jobId = r.id("jobId");
    request.payload = payload;
  } else if (cmd == "RESIZE") {
    request.command = Command::Resize;
    ResizeRequest payload;
    payload.processors = static_cast<int>(r.number("processors"));
    payload.when = ticksFromUnits(r.number("when", false, 0.0));
    request.payload = payload;
  } else if (cmd == "STATS") {
    request.command = Command::Stats;
  } else if (cmd == "VERIFY") {
    request.command = Command::Verify;
  } else if (cmd == "RESHAPES") {
    request.command = Command::Reshapes;
  } else if (cmd == "HELLO") {
    if (request.version < kProtocolVersionV2) {
      result.error = "HELLO requires protocol version 2";
      return result;
    }
    request.command = Command::Hello;
    HelloRequest payload;
    const auto window = r.id("window", false);
    payload.window = window == 0 ? 1 : static_cast<std::uint32_t>(window);
    request.payload = payload;
  } else {
    result.error = "unknown command '" + cmd + "'";
    return result;
  }
  if (r.failed()) {
    result.error = r.error();
    return result;
  }
  result.request = std::move(request);
  return result;
}

std::string encodeResponse(const Response& response) {
  JsonValue::Object o;
  o["id"] = static_cast<std::int64_t>(response.id);
  o["ok"] = response.ok;
  if (response.advertisedWindow.has_value()) {
    o["window"] = static_cast<std::int64_t>(*response.advertisedWindow);
  }
  if (!response.ok) {
    TPRM_CHECK(response.error.has_value(),
               "error responses must carry ErrorInfo");
    JsonValue::Object e;
    e["code"] = response.error->code;
    e["message"] = response.error->message;
    o["error"] = std::move(e);
    return JsonValue(std::move(o)).dump();
  }
  if (const auto* negotiate = std::get_if<NegotiateResult>(&response.result)) {
    o["cmd"] = toString(Command::Negotiate);
    JsonValue::Object res;
    res["admitted"] = negotiate->admitted;
    res["arrivalSeq"] = static_cast<std::int64_t>(negotiate->arrivalSeq);
    res["jobId"] = static_cast<std::int64_t>(negotiate->jobId);
    res["release"] = unitsFromTicks(negotiate->release);
    res["chainsConsidered"] = negotiate->chainsConsidered;
    res["chainsSchedulable"] = negotiate->chainsSchedulable;
    if (negotiate->admitted) {
      res["chainIndex"] = static_cast<std::int64_t>(negotiate->chainIndex);
      res["quality"] = negotiate->quality;
      res["placements"] = placementsToJson(negotiate->placements);
      if (!negotiate->bindings.empty()) {
        JsonValue::Object bindings;
        for (const auto& [param, value] : negotiate->bindings) {
          bindings[param] = value;
        }
        res["bindings"] = std::move(bindings);
      }
    }
    o["result"] = std::move(res);
  } else if (const auto* cancel = std::get_if<CancelResult>(&response.result)) {
    o["cmd"] = toString(Command::Cancel);
    JsonValue::Object res;
    res["freed"] = unitsFromTicks(cancel->freedTicks);
    o["result"] = std::move(res);
  } else if (const auto* resize = std::get_if<ResizeResult>(&response.result)) {
    o["cmd"] = toString(Command::Resize);
    JsonValue::Object res;
    res["processorsBefore"] = resize->processorsBefore;
    res["processorsAfter"] = resize->processorsAfter;
    res["kept"] = idsToJson(resize->kept);
    res["reconfigured"] = idsToJson(resize->reconfigured);
    res["dropped"] = idsToJson(resize->dropped);
    o["result"] = std::move(res);
  } else if (const auto* stats = std::get_if<StatsResult>(&response.result)) {
    o["cmd"] = toString(Command::Stats);
    JsonValue::Object res;
    res["processors"] = stats->processors;
    res["clock"] = unitsFromTicks(stats->clock);
    res["admitted"] = static_cast<std::int64_t>(stats->admitted);
    res["rejected"] = static_cast<std::int64_t>(stats->rejected);
    res["commandsExecuted"] =
        static_cast<std::int64_t>(stats->commandsExecuted);
    res["shards"] = stats->shards;
    o["result"] = std::move(res);
  } else if (const auto* verify = std::get_if<VerifyResult>(&response.result)) {
    o["cmd"] = toString(Command::Verify);
    JsonValue::Object res;
    res["ok"] = verify->ok;
    res["violations"] = verify->violations;
    if (!verify->ok) res["firstViolation"] = verify->firstViolation;
    o["result"] = std::move(res);
  } else if (const auto* hello = std::get_if<HelloResult>(&response.result)) {
    o["cmd"] = toString(Command::Hello);
    JsonValue::Object res;
    res["version"] = static_cast<std::int64_t>(hello->version);
    res["window"] = static_cast<std::int64_t>(hello->window);
    o["result"] = std::move(res);
  } else if (const auto* reshapes =
                 std::get_if<ReshapesResult>(&response.result)) {
    o["cmd"] = reshapes->push ? "RESHAPED" : toString(Command::Reshapes);
    JsonValue::Object res;
    JsonValue::Array events;
    for (const auto& event : reshapes->events) {
      JsonValue::Object e;
      e["jobId"] = static_cast<std::int64_t>(event.jobId);
      e["promotion"] = event.promotion;
      e["fromChain"] = static_cast<std::int64_t>(event.fromChain);
      e["toChain"] = static_cast<std::int64_t>(event.toChain);
      e["fromQuality"] = event.fromQuality;
      e["toQuality"] = event.toQuality;
      e["placements"] = placementsToJson(event.placements);
      events.emplace_back(std::move(e));
    }
    res["events"] = JsonValue(std::move(events));
    o["result"] = std::move(res);
  } else {
    TPRM_CHECK(false, "ok response without a result payload");
  }
  return JsonValue(std::move(o)).dump();
}

ResponseParseResult decodeResponse(const std::string& text) {
  ResponseParseResult out;
  const auto parsed = parseJson(text);
  if (!parsed.ok()) {
    out.error = "JSON error at byte " + std::to_string(parsed.errorOffset) +
                ": " + parsed.error;
    return out;
  }
  const JsonValue& root = *parsed.value;
  if (!root.isObject()) {
    out.error = "response must be an object";
    return out;
  }
  Reader r(root);
  Response response;
  response.id = r.id("id");
  response.ok = r.boolean("ok");
  if (r.failed()) {
    out.error = r.error();
    return out;
  }
  // Adaptive-window re-advertisement; tolerated absent (older servers).
  if (const auto* window = root.find("window")) {
    if (window->isNumber() && window->asNumber() >= 1) {
      response.advertisedWindow =
          static_cast<std::uint32_t>(window->asNumber());
    }
  }
  if (!response.ok) {
    const auto* error = root.find("error");
    if (error == nullptr || !error->isObject()) {
      out.error = "error response without 'error' object";
      return out;
    }
    Reader er(*error);
    ErrorInfo info;
    info.code = er.string("code");
    info.message = er.string("message");
    if (er.failed()) {
      out.error = er.error();
      return out;
    }
    response.error = std::move(info);
    out.response = std::move(response);
    return out;
  }

  const auto cmd = r.string("cmd");
  const auto* result = root.find("result");
  if (r.failed() || result == nullptr || !result->isObject()) {
    out.error = r.failed() ? r.error() : "ok response without 'result' object";
    return out;
  }
  Reader rr(*result);
  if (cmd == "NEGOTIATE") {
    NegotiateResult negotiate;
    negotiate.admitted = rr.boolean("admitted");
    negotiate.arrivalSeq = rr.id("arrivalSeq");
    negotiate.jobId = rr.id("jobId");
    negotiate.release = ticksFromUnits(rr.number("release"));
    negotiate.chainsConsidered = static_cast<int>(rr.number("chainsConsidered"));
    negotiate.chainsSchedulable =
        static_cast<int>(rr.number("chainsSchedulable"));
    if (!rr.failed() && negotiate.admitted) {
      negotiate.chainIndex = static_cast<std::size_t>(rr.id("chainIndex"));
      negotiate.quality = rr.number("quality");
      if (!placementsFromJson(result->find("placements"),
                              &negotiate.placements, &out.error)) {
        return out;
      }
      if (const auto* bindings = result->find("bindings")) {
        if (!bindings->isObject()) {
          out.error = "'bindings' must be an object";
          return out;
        }
        for (const auto& [param, value] : bindings->asObject()) {
          if (!value.isNumber()) {
            out.error = "binding '" + param + "' must be a number";
            return out;
          }
          negotiate.bindings[param] =
              static_cast<std::int64_t>(value.asNumber());
        }
      }
    }
    if (rr.failed()) {
      out.error = rr.error();
      return out;
    }
    response.result = std::move(negotiate);
  } else if (cmd == "CANCEL") {
    CancelResult cancel;
    cancel.freedTicks = ticksFromUnits(rr.number("freed"));
    if (rr.failed()) {
      out.error = rr.error();
      return out;
    }
    response.result = cancel;
  } else if (cmd == "RESIZE") {
    ResizeResult resize;
    resize.processorsBefore = static_cast<int>(rr.number("processorsBefore"));
    resize.processorsAfter = static_cast<int>(rr.number("processorsAfter"));
    if (rr.failed() ||
        !idsFromJson(result->find("kept"), &resize.kept, &out.error,
                     "kept") ||
        !idsFromJson(result->find("reconfigured"), &resize.reconfigured,
                     &out.error, "reconfigured") ||
        !idsFromJson(result->find("dropped"), &resize.dropped, &out.error,
                     "dropped")) {
      if (out.error.empty()) out.error = rr.error();
      return out;
    }
    response.result = std::move(resize);
  } else if (cmd == "STATS") {
    StatsResult stats;
    stats.processors = static_cast<int>(rr.number("processors"));
    stats.clock = ticksFromUnits(rr.number("clock"));
    stats.admitted = rr.id("admitted");
    stats.rejected = rr.id("rejected");
    stats.commandsExecuted = rr.id("commandsExecuted");
    if (const auto* shards = result->find("shards")) {
      if (shards->isNumber()) stats.shards = static_cast<int>(shards->asNumber());
    }
    if (rr.failed()) {
      out.error = rr.error();
      return out;
    }
    response.result = stats;
  } else if (cmd == "VERIFY") {
    VerifyResult verify;
    verify.ok = rr.boolean("ok");
    verify.violations = static_cast<int>(rr.number("violations"));
    if (const auto* violation = result->find("firstViolation")) {
      if (violation->isString()) verify.firstViolation = violation->asString();
    }
    if (rr.failed()) {
      out.error = rr.error();
      return out;
    }
    response.result = std::move(verify);
  } else if (cmd == "HELLO") {
    HelloResult hello;
    hello.version = static_cast<std::uint32_t>(rr.id("version"));
    hello.window = static_cast<std::uint32_t>(rr.id("window"));
    if (rr.failed()) {
      out.error = rr.error();
      return out;
    }
    response.result = hello;
  } else if (cmd == "RESHAPES" || cmd == "RESHAPED") {
    ReshapesResult reshapes;
    reshapes.push = cmd == "RESHAPED";
    const auto* events = result->find("events");
    if (events == nullptr || !events->isArray()) {
      out.error = "'events' must be an array";
      return out;
    }
    for (const auto& item : events->asArray()) {
      if (!item.isObject()) {
        out.error = "reshape events must be objects";
        return out;
      }
      Reader er(item);
      ReshapeEvent event;
      event.jobId = er.id("jobId");
      event.promotion = er.boolean("promotion");
      event.fromChain = static_cast<std::size_t>(er.id("fromChain"));
      event.toChain = static_cast<std::size_t>(er.id("toChain"));
      event.fromQuality = er.number("fromQuality");
      event.toQuality = er.number("toQuality");
      if (er.failed()) {
        out.error = er.error();
        return out;
      }
      if (!placementsFromJson(item.find("placements"), &event.placements,
                              &out.error)) {
        return out;
      }
      reshapes.events.push_back(std::move(event));
    }
    response.result = std::move(reshapes);
  } else {
    out.error = "unknown response command '" + cmd + "'";
    return out;
  }
  out.response = std::move(response);
  return out;
}

Response makeError(std::uint64_t id, std::string code, std::string message) {
  Response response;
  response.id = id;
  response.ok = false;
  response.error = ErrorInfo{std::move(code), std::move(message)};
  return response;
}

}  // namespace tprm::service
