// tprmd: the QoS arbitrator as a long-lived negotiation service.
//
// Architecture (mirrors the paper's Section 3 split, across a real process
// boundary): per-application QoS agents connect over a Unix-domain or TCP
// loopback socket and exchange length-prefixed JSON frames; the system-wide
// arbitrator state sits behind per-shard command queues.
//
//   accept thread(s) ──► event-loop threads (epoll, nonblocking sockets)
//                          │  each loop owns its connections: incremental
//                          │  frame decoding, buffered partial writes
//                          ▼
//            (arrivalSeq, jobId) drawn atomically, command routed
//                          │  NEGOTIATE/CANCEL: queue[jobId % K]
//                          │  RESIZE/STATS/VERIFY: queue[0]
//                          ▼
//          K command queues  (backpressure: v1 connections pause reads,
//                             v2 connections get a typed `busy` error)
//                          │
//                          ▼
//          K worker threads over one qos::ShardedArbitrator
//                          │  drain up to workerBatch commands per wakeup
//                          ▼
//          responses handed back to the owning loop (eventfd MPSC inbox),
//          correlated by requestId (v2) or delivered in submit order (v1)
//
// A connection speaks wire protocol v1 unless its first frame is HELLO
// (docs/wire_protocol.md).  v1 keeps the classic one-request-one-response
// contract: even though sharded execution can finish out of order, the loop
// holds completed responses until all earlier ones on that connection have
// been written.  v2 connections carry up to a negotiated window of
// in-flight requests and receive responses in completion order.
//
// With shards == 1 this degenerates to the classic single-writer design:
// one queue, one worker, total arrivalSeq order, and (the replay tests pin
// this) decisions byte-identical to an in-process QoSArbitrator fed the
// same specs in arrivalSeq order.  With shards > 1 the order guarantee is
// per shard: commands routed to the same shard execute in arrivalSeq order;
// cross-shard commands may interleave.
//
// Failure semantics:
//  * Commands are atomic: once enqueued they execute to completion even if
//    the submitting client vanishes, so a mid-negotiation disconnect never
//    leaves partial arbitrator state (verify() stays clean) — the decision
//    simply has no reader.
//  * Malformed frames get an error response and the connection survives;
//    oversized or truncated frames desynchronize the stream, so the server
//    sends a best-effort error and closes that connection only.
//  * stop() drains: stop accepting, stop reading, execute everything
//    already queued, flush every pending response, then join.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qos/command_queue.h"
#include "qos/sharded.h"
#include "service/protocol.h"
#include "service/wiretrace.h"

namespace tprm::service {

struct ServerConfig {
  /// Machine size the arbitrator manages.
  int processors = 32;
  /// Admission heuristic configuration (Section 5.2 defaults).
  sched::GreedyOptions options = {};
  /// Arbitrator shards (>= 1, <= processors).  One shard reproduces the
  /// unsharded single-writer behavior exactly; more shards partition the
  /// machine and admit in parallel (qos/sharded.h).
  int shards = 1;
  /// Offer home-shard rejections to the emptiest other shard before finally
  /// rejecting (shards > 1 only).
  bool shardSpill = true;
  /// Admit jobs too wide for any single shard by gang-reserving width
  /// fragments across shards (two-phase trial reserve; shards > 1 only).
  bool shardGang = false;
  /// Period of the background capacity rebalancer; 0 disables it.  Only
  /// meaningful with shards > 1.
  int rebalanceIntervalMs = 0;
  /// Event-loop threads sharing the connections (>= 1).  Two comfortably
  /// saturate the shard workers on loopback; more helps only with many
  /// thousands of connections.
  int eventLoops = 2;
  /// Unix-domain listening path; empty = no Unix listener.
  std::string unixPath;
  /// TCP loopback listener; nullopt = none, 0 = ephemeral (see tcpPort()).
  std::optional<std::uint16_t> tcpPort;
  /// Per-frame payload cap for both directions.
  std::size_t maxFrameBytes = 1 << 20;
  /// Commands admitted but not yet executed, per shard queue.  At or above
  /// this threshold v1 connections stop being read (resumed when the worker
  /// drains below it) and v2 enqueues are refused with a `busy` error.
  std::size_t commandQueueCapacity = 256;
  /// Server-side cap on the v2 per-connection in-flight window; HELLO
  /// grants min(requested, this).  Requests beyond the granted window get
  /// a `busy` error instead of stalling the loop.
  std::size_t maxInFlightPerConnection = 64;
  /// Commands a shard worker drains per queue-lock acquisition.
  std::size_t workerBatch = 32;
  /// Sessions beyond this are refused at accept with a silent close.
  std::size_t maxSessions = 128;
  /// How long a connection may sit idle between requests before the server
  /// closes it.
  std::chrono::milliseconds idleTimeout{30'000};
  /// Budget for flushing pending responses at shutdown (and, historically,
  /// for one blocking frame; the event loop itself never blocks on I/O).
  std::chrono::milliseconds ioTimeout{5'000};
  /// Attach the observability layer: a metrics registry over the whole
  /// negotiation stack plus a trace ring of recent commands.  Counters sit
  /// outside the decision path, so disabling only removes the bookkeeping —
  /// decisions are identical either way.
  bool observability = true;
  /// Recent command spans retained by the trace ring (>= 1).
  std::size_t traceCapacity = 256;
  /// Wire-trace recording: every decoded request frame that enters the
  /// command queues is appended (in arrivalSeq order — record happens under
  /// the sequence lock) to this file in the format of service/wiretrace.h.
  /// Empty = no recording.  start() fails if the file cannot be created.
  std::string recordPath;
  /// Elastic renegotiation policy (e.g. an elastic::Reshaper); nullptr
  /// keeps the paper's static negotiation model.  Owned by the embedder and
  /// must outlive the server.  When set, a rejected NEGOTIATE may demote
  /// admitted-but-not-started jobs to make room, and freed capacity
  /// promotes demoted jobs back up their ladders; every committed move is
  /// reported to the connection that negotiated the moved job (RESHAPED
  /// push on v2, buffered for the next RESHAPES poll on v1).
  const qos::ReshapePolicy* reshapePolicy = nullptr;
  /// Per-connection cap on reshape events buffered for v1 RESHAPES polls;
  /// oldest events are dropped (and counted) beyond it.
  std::size_t reshapeEventBuffer = 256;
  /// Server→shard handoff queue implementation (qos/command_queue.h).
  /// Mutex is the decision-identical baseline; Mpsc swaps in the lock-free
  /// linked intake; Steal additionally lets idle shard workers drain (and
  /// execute, under the victim's consumer claim — per-shard arrivalSeq
  /// order holds) batches from the deepest sibling queue.
  qos::QueueKind queueKind = qos::QueueKind::Mutex;
  /// Test-only seam: when set, a shard worker calls it after draining a
  /// batch and before executing it.  Lets tests hold a worker mid-batch to
  /// deterministically fill a queue (gauge high-water, shutdown-wedge
  /// regressions).  Production callers leave it unset.
  std::function<void()> workerSeamForTest;
};

/// Adaptive pipeline window (pure, exposed for tests): the v2 in-flight
/// window the server honours and re-advertises given the deepest shard
/// queue.  Full window below a quarter of queue capacity, half up to half
/// capacity, an eighth (>= 1) beyond — backpressure arrives before the
/// queue is actually full, so pipelined clients throttle at the source.
[[nodiscard]] std::uint32_t adaptiveWindow(std::size_t queueDepth,
                                           std::size_t queueCapacity,
                                           std::uint32_t fullWindow);

/// Counters exposed for tests and the STATS command.  Snapshot semantics.
struct ServerCounters {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsRefused = 0;
  std::uint64_t framesMalformed = 0;
  std::uint64_t framesOversized = 0;
  std::uint64_t commandsExecuted = 0;
  std::uint64_t disconnectsMidRequest = 0;
  /// v2 backpressure: requests refused with a `busy` error (window
  /// exceeded or shard queue full).  Never counts executed work.
  std::uint64_t busyRejections = 0;
  /// Successful HELLO handshakes (connections upgraded to v2).
  std::uint64_t helloHandshakes = 0;
  /// Steal-mode only: batches a shard worker drained from a sibling's
  /// queue instead of its own.
  std::uint64_t batchesStolen = 0;
  /// Elastic reshape events delivered toward a client (pushed on v2 or
  /// buffered for a v1 poll).
  std::uint64_t reshapeEventsDispatched = 0;
  /// Reshape events with no reachable owner (connection gone, or a v1
  /// buffer overflow evicted the oldest event).
  std::uint64_t reshapeEventsDropped = 0;
};

class NegotiationServer {
 public:
  explicit NegotiationServer(ServerConfig config);
  ~NegotiationServer();

  NegotiationServer(const NegotiationServer&) = delete;
  NegotiationServer& operator=(const NegotiationServer&) = delete;

  /// Binds the configured listeners and starts the service threads.
  /// Returns false (with *error set) if no listener could be bound.
  [[nodiscard]] bool start(std::string* error);

  /// Graceful drain; idempotent.  Blocks until every loop and worker
  /// thread has exited.
  void stop();

  [[nodiscard]] bool running() const { return started_ && !stopped_; }

  /// Actual TCP port (after an ephemeral bind); 0 if no TCP listener.
  [[nodiscard]] std::uint16_t tcpPort() const { return boundTcpPort_; }
  [[nodiscard]] const std::string& unixPath() const {
    return config_.unixPath;
  }

  [[nodiscard]] ServerCounters counters() const;

  /// Full observability snapshot:
  ///   {"enabled": bool,
  ///    "server": {per-connection/frame counters, queue+session gauges},
  ///    "counters"/"gauges"/"histograms": registry snapshot,
  ///    "spans": recent trace spans (oldest first)}
  /// With observability disabled only {"enabled": false, "server": {...}} is
  /// emitted.  Safe to call from any thread while the server runs.
  [[nodiscard]] JsonValue observabilitySnapshot() const;

  /// Registry / trace access for embedders (bench, examples); nullptr when
  /// observability is disabled.
  [[nodiscard]] obs::MetricsRegistry* metricsRegistry() {
    return registry_.get();
  }
  [[nodiscard]] obs::TraceRing* traceRing() { return trace_.get(); }

  /// The sharded arbitrator behind the queues.  Read-only use by embedders
  /// (bench replay verification) — only safe while no commands are in
  /// flight (after stop(), or between requests in single-client tests).
  [[nodiscard]] const qos::ShardedArbitrator& arbitrator() const {
    return arbitrator_;
  }

 private:
  struct PendingCommand;
  struct Connection;
  struct Loop;
  struct ResponseMsg;
  struct ShardQueue;

  enum class EnqueueStatus {
    Ok,          // admitted; response will arrive via the loop inbox
    OkThrottle,  // admitted, but the target queue is at capacity — pause
                 // reading this (v1) connection until the worker drains
    Busy,        // refused (v2 + queue full); nothing was committed
    Closed,      // server draining; nothing was committed
  };

  void acceptLoop(net::Listener* listener);
  void loopMain(Loop* loop);
  void workerLoop(int shard);
  /// Claims `queue`'s consumer token, drains up to workerBatch commands
  /// and executes them with the token still held (so per-shard commands
  /// execute in arrivalSeq order no matter which worker drains), posts
  /// responses and throttle resumes, then releases the token.  Returns
  /// false — with nothing drained — when the token is taken or the queue
  /// is empty.  `batch`/`resumes`/`perLoop` are caller-owned scratch.
  bool drainAndExecute(ShardQueue* queue,
                       std::vector<std::shared_ptr<PendingCommand>>* batch,
                       std::vector<std::pair<int, std::uint64_t>>* resumes,
                       std::vector<std::vector<ResponseMsg>>* perLoop);
  void rebalanceLoop();

  // --- Loop-thread helpers (each touches only `loop`-owned state). ---
  void processInbox(Loop* loop);
  void registerConnection(Loop* loop, net::Socket socket);
  void handleReadable(Loop* loop, Connection* conn);
  void processDecodedFrames(Loop* loop, Connection* conn);
  void handleFrame(Loop* loop, Connection* conn, const std::string& payload);
  /// Queues `payload` (already-encoded response JSON) for delivery.  For v1
  /// connections `deliverSeq` enforces submit-order delivery; v2 responses
  /// pass kUnordered and go out immediately.
  void deliverResponse(Loop* loop, Connection* conn, std::uint64_t deliverSeq,
                       const std::string& payload);
  void flushOut(Loop* loop, Connection* conn);
  void updateInterest(Loop* loop, Connection* conn);
  void closeConnection(Loop* loop, Connection* conn);
  void sweepIdle(Loop* loop);

  /// Routes and enqueues a decoded command, stamping its arrival sequence
  /// (and, for NEGOTIATE, reserving its job id — the id fixes the home
  /// shard, so routing is deterministic in arrival order).  Never blocks:
  /// a full queue either throttles the connection (v1) or refuses with
  /// Busy (v2, `allowBusy`).  On Busy/Closed nothing was committed — no
  /// sequence number, no job id, no trace record.
  EnqueueStatus enqueue(const std::shared_ptr<PendingCommand>& command,
                        bool allowBusy);

  Response execute(const Request& request, std::uint64_t arrivalSeq,
                   const std::optional<std::uint64_t>& presetJobId,
                   std::vector<qos::QualityMove>* moves);

  /// Current adaptive v2 window: adaptiveWindow() over the deepest shard
  /// queue.  Cheap (K relaxed atomic loads); called per frame and per
  /// worker response.
  [[nodiscard]] std::uint32_t dynamicWindowNow() const;

  /// Stamps the adaptive-window re-advertisement on a response when the
  /// server is under pressure (no-op at full window, so unpressured
  /// responses are byte-identical to older servers').
  void stampWindow(Response* response) const;

  /// Records one finished command into the histograms and the trace ring.
  /// Called on worker threads; requires observability on (both sinks are
  /// thread-safe).
  void recordSpan(const PendingCommand& command, const Response& response,
                  std::int64_t startNs);

  ServerConfig config_;
  net::FrameLimits frameLimits_;

  net::Listener unixListener_;
  net::Listener tcpListener_;
  std::uint16_t boundTcpPort_ = 0;

  std::vector<std::thread> acceptThreads_;
  std::thread rebalanceThread_;

  /// Event loops; connections are handed out round-robin at accept.
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> nextLoop_{0};
  std::atomic<std::uint64_t> nextConnId_{1};
  std::atomic<std::size_t> activeSessions_{0};
  std::atomic<int> drainAcks_{0};

  /// Guards the (arrivalSeq, jobId) draw and the push that follows, so
  /// commands enter their target queue in arrivalSeq order.  Lock order:
  /// seqMutex_ then the target ShardQueue's mutex.
  std::mutex seqMutex_;
  std::uint64_t nextArrivalSeq_ = 0;  // guarded by seqMutex_
  /// Wire-trace recording (config_.recordPath).  Written under seqMutex_ so
  /// the file order is exactly arrivalSeq order; lastRecordNs_ carries the
  /// monotonic timestamp of the previous record for the delta encoding.
  WireTraceWriter traceWriter_;         // guarded by seqMutex_ after start()
  std::int64_t lastRecordNs_ = 0;       // guarded by seqMutex_
  /// Set (under seqMutex_) by stop(); read by waiters on any queue.
  std::atomic<bool> queueClosed_{false};

  /// One command queue + worker thread per shard.
  std::vector<std::unique_ptr<ShardQueue>> queues_;

  /// jobId -> (loopIndex, connId) of the connection that negotiated it;
  /// reshape events for a job are routed to its negotiating connection.
  /// Written at enqueue, read by workers, pruned on CANCEL and when a
  /// dispatch finds the connection gone.
  std::mutex originMu_;
  std::unordered_map<std::uint64_t, std::pair<int, std::uint64_t>>
      originByJob_;

  qos::ShardedArbitrator arbitrator_;

  // Observability (all null when config_.observability is false).  The
  // registry owns the metric instances; the raw pointers below are cached
  // lookups with registry lifetime.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  /// One bundle per shard: prefix "arbitrator" when shards == 1 (exact
  /// unsharded names), "arbitrator.shard<k>" otherwise.
  std::vector<std::unique_ptr<obs::NegotiationMetrics>> negotiation_;
  std::unique_ptr<obs::ShardedMetrics> shardedMetrics_;  // shards > 1 only
  std::unique_ptr<obs::TraceRing> trace_;
  obs::Gauge* sessionsActive_ = nullptr;
  obs::HistogramMetric* queueWaitUs_ = nullptr;
  obs::HistogramMetric* executeUs_ = nullptr;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  // Counters (atomics: bumped from loop/accept/worker threads, read
  // anywhere).
  std::atomic<std::uint64_t> connectionsAccepted_{0};
  std::atomic<std::uint64_t> connectionsRefused_{0};
  std::atomic<std::uint64_t> framesMalformed_{0};
  std::atomic<std::uint64_t> framesOversized_{0};
  std::atomic<std::uint64_t> commandsExecuted_{0};
  std::atomic<std::uint64_t> disconnectsMidRequest_{0};
  std::atomic<std::uint64_t> busyRejections_{0};
  std::atomic<std::uint64_t> helloHandshakes_{0};
  std::atomic<std::uint64_t> batchesStolen_{0};
  std::atomic<std::uint64_t> reshapeEventsDispatched_{0};
  std::atomic<std::uint64_t> reshapeEventsDropped_{0};
};

}  // namespace tprm::service
