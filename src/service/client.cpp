#include "service/client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace tprm::service {

namespace {

ClientError transportError(ClientStatus status, std::string message) {
  ClientError error;
  error.status = status;
  error.message = std::move(message);
  return error;
}

ClientStatus fromFrameStatus(net::FrameStatus status) {
  switch (status) {
    case net::FrameStatus::Ok: return ClientStatus::Ok;
    case net::FrameStatus::Timeout: return ClientStatus::Timeout;
    case net::FrameStatus::Closed: return ClientStatus::Disconnected;
    case net::FrameStatus::TooLarge: return ClientStatus::ProtocolError;
    case net::FrameStatus::Error: return ClientStatus::ProtocolError;
  }
  return ClientStatus::ProtocolError;
}

/// Extracts the typed result, converting a wrong-variant answer (server bug
/// or crossed wires) into a ProtocolError.
template <typename T>
ClientResult<T> extract(ClientResult<Response> response) {
  ClientResult<T> out;
  if (!response.ok()) {
    out.error = std::move(response.error);
    return out;
  }
  if (auto* value = std::get_if<T>(&response.value->result)) {
    out.value = std::move(*value);
    return out;
  }
  out.error = transportError(ClientStatus::ProtocolError,
                             "response carries an unexpected result type");
  return out;
}

}  // namespace

const char* toString(ClientStatus status) {
  switch (status) {
    case ClientStatus::Ok: return "ok";
    case ClientStatus::ConnectFailed: return "connect failed";
    case ClientStatus::Timeout: return "timeout";
    case ClientStatus::Disconnected: return "disconnected";
    case ClientStatus::ProtocolError: return "protocol error";
    case ClientStatus::ServerError: return "server error";
  }
  return "unknown";
}

std::vector<std::chrono::milliseconds> connectBackoffPlan(
    const ClientConfig& config) {
  const int attempts = std::max(1, config.connectAttempts);
  std::vector<std::chrono::milliseconds> plan(
      static_cast<std::size_t>(attempts));  // plan[0] stays 0: try at once
  const auto cap = std::max(config.maxConnectBackoff,
                            std::chrono::milliseconds{0});
  auto backoff = std::clamp(config.connectBackoff,
                            std::chrono::milliseconds{0}, cap);
  for (std::size_t attempt = 1; attempt < plan.size(); ++attempt) {
    plan[attempt] = backoff;
    // Clamp before doubling so the growth can never overflow the rep.
    backoff = backoff >= cap / 2 ? cap : backoff * 2;
  }
  return plan;
}

QoSAgentClient::QoSAgentClient(ClientConfig config)
    : config_(std::move(config)), frameLimits_{config_.maxFrameBytes} {
  if (config_.metrics != nullptr) {
    connectAttempts_ = &config_.metrics->counter("client.connect_attempts");
    connectFailures_ = &config_.metrics->counter("client.connect_failures");
    requests_ = &config_.metrics->counter("client.requests");
    requestErrors_ = &config_.metrics->counter("client.request_errors");
    requestLatencyUs_ =
        &obs::latencyHistogram(*config_.metrics, "client.request_us");
  }
}

std::optional<ClientError> QoSAgentClient::connect() {
  if (socket_.valid()) return std::nullopt;
  std::string lastError;
  const auto plan = connectBackoffPlan(config_);
  for (std::size_t attempt = 0; attempt < plan.size(); ++attempt) {
    if (plan[attempt].count() > 0) std::this_thread::sleep_for(plan[attempt]);
    if (connectAttempts_ != nullptr) connectAttempts_->add();
    const auto deadline = net::Deadline::after(config_.connectTimeout);
    auto connected = config_.unixPath.empty()
                         ? net::connectTcp(config_.tcpHost, config_.tcpPort,
                                           deadline)
                         : net::connectUnix(config_.unixPath, deadline);
    if (connected.ok()) {
      socket_ = std::move(connected.socket);
      return std::nullopt;
    }
    lastError = connected.error;
  }
  if (connectFailures_ != nullptr) connectFailures_->add();
  return transportError(ClientStatus::ConnectFailed,
                        "after " + std::to_string(plan.size()) +
                            " attempts: " + lastError);
}

ClientResult<Response> QoSAgentClient::call(Request request) {
  if (requests_ != nullptr) requests_->add();
  if (requestLatencyUs_ == nullptr) {
    auto out = callImpl(std::move(request));
    if (!out.ok() && requestErrors_ != nullptr) requestErrors_->add();
    return out;
  }
  const std::int64_t start = obs::monotonicNanos();
  auto out = callImpl(std::move(request));
  requestLatencyUs_->record(
      static_cast<double>(obs::monotonicNanos() - start) / 1'000.0);
  if (!out.ok() && requestErrors_ != nullptr) requestErrors_->add();
  return out;
}

ClientResult<Response> QoSAgentClient::callImpl(Request request) {
  ClientResult<Response> out;
  if (auto error = connect()) {
    out.error = std::move(*error);
    return out;
  }
  request.id = nextRequestId_++;
  const auto deadline = net::Deadline::after(config_.requestDeadline);
  const auto encoded = encodeRequest(request);
  const auto written = net::writeFrame(socket_, encoded, frameLimits_,
                                       deadline);
  if (!written.ok()) {
    socket_.close();
    out.error = transportError(fromFrameStatus(written.status),
                               written.message.empty()
                                   ? net::toString(written.status)
                                   : written.message);
    return out;
  }
  auto frame = net::readFrame(socket_, frameLimits_, deadline, deadline);
  if (!frame.ok()) {
    socket_.close();
    out.error = transportError(fromFrameStatus(frame.status),
                               frame.message.empty()
                                   ? net::toString(frame.status)
                                   : frame.message);
    return out;
  }
  auto decoded = decodeResponse(frame.payload);
  if (!decoded.ok()) {
    socket_.close();
    out.error =
        transportError(ClientStatus::ProtocolError, decoded.error);
    return out;
  }
  // Undecodable requests are answered with correlation id 0; everything
  // else must echo our id (one request in flight per connection).
  if (decoded.response->id != request.id && decoded.response->id != 0) {
    socket_.close();
    out.error = transportError(ClientStatus::ProtocolError,
                               "response id does not match request id");
    return out;
  }
  if (!decoded.response->ok) {
    out.error.status = ClientStatus::ServerError;
    out.error.code = decoded.response->error->code;
    out.error.message = decoded.response->error->message;
    return out;
  }
  out.value = std::move(*decoded.response);
  return out;
}

ClientResult<NegotiateResult> QoSAgentClient::negotiate(
    const task::TunableJobSpec& spec, Time release) {
  Request request;
  request.command = Command::Negotiate;
  request.payload = NegotiateRequest{spec, release};
  return extract<NegotiateResult>(call(std::move(request)));
}

ClientResult<CancelResult> QoSAgentClient::cancel(std::uint64_t jobId) {
  Request request;
  request.command = Command::Cancel;
  request.payload = CancelRequest{jobId};
  return extract<CancelResult>(call(std::move(request)));
}

ClientResult<ResizeResult> QoSAgentClient::resize(int processors, Time when) {
  Request request;
  request.command = Command::Resize;
  request.payload = ResizeRequest{processors, when};
  return extract<ResizeResult>(call(std::move(request)));
}

ClientResult<StatsResult> QoSAgentClient::stats() {
  Request request;
  request.command = Command::Stats;
  return extract<StatsResult>(call(std::move(request)));
}

ClientResult<VerifyResult> QoSAgentClient::verify() {
  Request request;
  request.command = Command::Verify;
  return extract<VerifyResult>(call(std::move(request)));
}

}  // namespace tprm::service
