#include "service/client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace tprm::service {

namespace {

ClientError transportError(ClientStatus status, std::string message) {
  ClientError error;
  error.status = status;
  error.message = std::move(message);
  return error;
}

ClientStatus fromFrameStatus(net::FrameStatus status) {
  switch (status) {
    case net::FrameStatus::Ok: return ClientStatus::Ok;
    case net::FrameStatus::Timeout: return ClientStatus::Timeout;
    case net::FrameStatus::Closed: return ClientStatus::Disconnected;
    case net::FrameStatus::TooLarge: return ClientStatus::ProtocolError;
    case net::FrameStatus::Error: return ClientStatus::ProtocolError;
  }
  return ClientStatus::ProtocolError;
}

/// Converts a decoded server error into the typed client error, mapping the
/// v2 `busy` code onto its own retriable status.
ClientError fromServerError(const Response& response) {
  ClientError error;
  error.status = response.error->code == "busy" ? ClientStatus::Busy
                                                : ClientStatus::ServerError;
  error.code = response.error->code;
  error.message = response.error->message;
  return error;
}

}  // namespace

const char* toString(ClientStatus status) {
  switch (status) {
    case ClientStatus::Ok: return "ok";
    case ClientStatus::ConnectFailed: return "connect failed";
    case ClientStatus::Timeout: return "timeout";
    case ClientStatus::Disconnected: return "disconnected";
    case ClientStatus::ProtocolError: return "protocol error";
    case ClientStatus::ServerError: return "server error";
    case ClientStatus::Busy: return "busy";
  }
  return "unknown";
}

std::vector<std::chrono::milliseconds> connectBackoffPlan(
    const ClientConfig& config) {
  const int attempts = std::max(1, config.connectAttempts);
  std::vector<std::chrono::milliseconds> plan(
      static_cast<std::size_t>(attempts));  // plan[0] stays 0: try at once
  const auto cap = std::max(config.maxConnectBackoff,
                            std::chrono::milliseconds{0});
  auto backoff = std::clamp(config.connectBackoff,
                            std::chrono::milliseconds{0}, cap);
  for (std::size_t attempt = 1; attempt < plan.size(); ++attempt) {
    plan[attempt] = backoff;
    // Clamp before doubling so the growth can never overflow the rep.
    backoff = backoff >= cap / 2 ? cap : backoff * 2;
  }
  return plan;
}

QoSAgentClient::QoSAgentClient(ClientConfig config)
    : config_(std::move(config)), frameLimits_{config_.maxFrameBytes} {
  if (config_.metrics != nullptr) {
    connectAttempts_ = &config_.metrics->counter("client.connect_attempts");
    connectFailures_ = &config_.metrics->counter("client.connect_failures");
    requests_ = &config_.metrics->counter("client.requests");
    requestErrors_ = &config_.metrics->counter("client.request_errors");
    requestLatencyUs_ =
        &obs::latencyHistogram(*config_.metrics, "client.request_us");
  }
}

std::optional<ClientError> QoSAgentClient::connect() {
  if (socket_.valid()) return std::nullopt;
  std::string lastError;
  const auto plan = connectBackoffPlan(config_);
  for (std::size_t attempt = 0; attempt < plan.size(); ++attempt) {
    if (plan[attempt].count() > 0) std::this_thread::sleep_for(plan[attempt]);
    if (connectAttempts_ != nullptr) connectAttempts_->add();
    const auto deadline = net::Deadline::after(config_.connectTimeout);
    auto connected = config_.unixPath.empty()
                         ? net::connectTcp(config_.tcpHost, config_.tcpPort,
                                           deadline)
                         : net::connectUnix(config_.unixPath, deadline);
    if (connected.ok()) {
      socket_ = std::move(connected.socket);
      return std::nullopt;
    }
    lastError = connected.error;
  }
  if (connectFailures_ != nullptr) connectFailures_->add();
  return transportError(ClientStatus::ConnectFailed,
                        "after " + std::to_string(plan.size()) +
                            " attempts: " + lastError);
}

ClientResult<Response> QoSAgentClient::call(Request request) {
  if (requests_ != nullptr) requests_->add();
  if (requestLatencyUs_ == nullptr) {
    auto out = callImpl(std::move(request));
    if (!out.ok() && requestErrors_ != nullptr) requestErrors_->add();
    return out;
  }
  const std::int64_t start = obs::monotonicNanos();
  auto out = callImpl(std::move(request));
  requestLatencyUs_->record(
      static_cast<double>(obs::monotonicNanos() - start) / 1'000.0);
  if (!out.ok() && requestErrors_ != nullptr) requestErrors_->add();
  return out;
}

ClientResult<Response> QoSAgentClient::callImpl(Request request) {
  ClientResult<Response> out;
  if (auto error = connect()) {
    out.error = std::move(*error);
    return out;
  }
  request.id = nextRequestId_++;
  const auto deadline = net::Deadline::after(config_.requestDeadline);
  const auto encoded = encodeRequest(request);
  const auto written = net::writeFrame(socket_, encoded, frameLimits_,
                                       deadline);
  if (!written.ok()) {
    socket_.close();
    out.error = transportError(fromFrameStatus(written.status),
                               written.message.empty()
                                   ? net::toString(written.status)
                                   : written.message);
    return out;
  }
  auto frame = net::readFrame(socket_, frameLimits_, deadline, deadline);
  if (!frame.ok()) {
    socket_.close();
    out.error = transportError(fromFrameStatus(frame.status),
                               frame.message.empty()
                                   ? net::toString(frame.status)
                                   : frame.message);
    return out;
  }
  auto decoded = decodeResponse(frame.payload);
  if (!decoded.ok()) {
    socket_.close();
    out.error =
        transportError(ClientStatus::ProtocolError, decoded.error);
    return out;
  }
  // Undecodable requests are answered with correlation id 0; everything
  // else must echo our id (one request in flight per connection).
  if (decoded.response->id != request.id && decoded.response->id != 0) {
    socket_.close();
    out.error = transportError(ClientStatus::ProtocolError,
                               "response id does not match request id");
    return out;
  }
  if (!decoded.response->ok) {
    out.error = fromServerError(*decoded.response);
    return out;
  }
  out.value = std::move(*decoded.response);
  return out;
}

ClientResult<NegotiateResult> QoSAgentClient::negotiate(
    const task::TunableJobSpec& spec, Time release) {
  Request request;
  request.command = Command::Negotiate;
  request.payload = NegotiateRequest{spec, release};
  return extractResult<NegotiateResult>(call(std::move(request)));
}

ClientResult<CancelResult> QoSAgentClient::cancel(std::uint64_t jobId) {
  Request request;
  request.command = Command::Cancel;
  request.payload = CancelRequest{jobId};
  return extractResult<CancelResult>(call(std::move(request)));
}

ClientResult<ResizeResult> QoSAgentClient::resize(int processors, Time when) {
  Request request;
  request.command = Command::Resize;
  request.payload = ResizeRequest{processors, when};
  return extractResult<ResizeResult>(call(std::move(request)));
}

ClientResult<StatsResult> QoSAgentClient::stats() {
  Request request;
  request.command = Command::Stats;
  return extractResult<StatsResult>(call(std::move(request)));
}

ClientResult<VerifyResult> QoSAgentClient::verify() {
  Request request;
  request.command = Command::Verify;
  return extractResult<VerifyResult>(call(std::move(request)));
}

ClientResult<ReshapesResult> QoSAgentClient::reshapes() {
  Request request;
  request.command = Command::Reshapes;
  return extractResult<ReshapesResult>(call(std::move(request)));
}

// --- PipelinedClient -------------------------------------------------------

namespace {

/// Reader poll granularity: how quickly close() is noticed while idle.
constexpr std::chrono::milliseconds kReaderSlice{50};

/// Corked-mode buffer level that forces a flush even while the window still
/// has room: keeps the buffer bounded when frames are large.
constexpr std::size_t kCorkFlushBytes = 128 * 1024;

}  // namespace

PipelinedClient::PipelinedClient(ClientConfig config, std::uint32_t window,
                                 bool corked)
    : config_(std::move(config)),
      requestedWindow_(std::max<std::uint32_t>(window, 1)),
      corked_(corked),
      frameLimits_{config_.maxFrameBytes} {}

PipelinedClient::~PipelinedClient() { close(); }

std::optional<ClientError> PipelinedClient::connect() {
  if (alive_.load()) return std::nullopt;
  std::string lastError;
  const auto plan = connectBackoffPlan(config_);
  for (std::size_t attempt = 0; attempt < plan.size(); ++attempt) {
    if (plan[attempt].count() > 0) std::this_thread::sleep_for(plan[attempt]);
    const auto deadline = net::Deadline::after(config_.connectTimeout);
    auto connected = config_.unixPath.empty()
                         ? net::connectTcp(config_.tcpHost, config_.tcpPort,
                                           deadline)
                         : net::connectUnix(config_.unixPath, deadline);
    if (connected.ok()) {
      socket_ = std::move(connected.socket);
      break;
    }
    lastError = connected.error;
  }
  if (!socket_.valid()) {
    return transportError(ClientStatus::ConnectFailed,
                          "after " + std::to_string(plan.size()) +
                              " attempts: " + lastError);
  }

  // HELLO handshake, synchronous: until it succeeds the connection is v1
  // and nothing may be pipelined on it.
  Request hello;
  hello.version = kProtocolVersionV2;
  hello.command = Command::Hello;
  hello.id = nextRequestId_++;
  hello.payload = HelloRequest{requestedWindow_};
  const auto deadline = net::Deadline::after(config_.requestDeadline);
  const auto written =
      net::writeFrame(socket_, encodeRequest(hello), frameLimits_, deadline);
  if (!written.ok()) {
    socket_.close();
    return transportError(fromFrameStatus(written.status), written.message);
  }
  auto frame = net::readFrame(socket_, frameLimits_, deadline, deadline);
  if (!frame.ok()) {
    socket_.close();
    return transportError(fromFrameStatus(frame.status), frame.message);
  }
  auto decoded = decodeResponse(frame.payload);
  if (!decoded.ok()) {
    socket_.close();
    return transportError(ClientStatus::ProtocolError, decoded.error);
  }
  if (!decoded.response->ok) {
    socket_.close();
    auto error = fromServerError(*decoded.response);
    // A v1-only server answers HELLO with bad_request: that is a protocol
    // mismatch, not a server-side failure.
    if (error.status == ClientStatus::ServerError) {
      error.status = ClientStatus::ProtocolError;
    }
    return error;
  }
  const auto* granted = std::get_if<HelloResult>(&decoded.response->result);
  if (granted == nullptr || granted->version != kProtocolVersionV2 ||
      granted->window == 0) {
    socket_.close();
    return transportError(ClientStatus::ProtocolError,
                          "HELLO response is not a v2 grant");
  }
  grantedWindow_ = granted->window;
  window_ = granted->window;
  stopping_.store(false);
  alive_.store(true);
  reader_ = std::thread([this] { readerMain(); });
  return std::nullopt;
}

std::uint32_t PipelinedClient::currentWindow() {
  std::lock_guard<std::mutex> lock(mu_);
  return window_;
}

std::vector<ReshapeEvent> PipelinedClient::drainReshapeEvents() {
  std::vector<ReshapeEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.swap(reshapes_);
  return out;
}

void PipelinedClient::close() {
  stopping_.store(true);
  if (reader_.joinable()) reader_.join();
  failAll(transportError(ClientStatus::Disconnected, "client closed"));
  socket_.close();
  alive_.store(false);
}

PipelinedClient::ResponseFuture PipelinedClient::submit(Request request) {
  std::promise<ClientResult<Response>> promise;
  auto future = promise.get_future();
  std::unique_lock<std::mutex> lock(mu_);
  windowOpen_.wait(lock, [this] {
    return !alive_.load() || pending_.size() < window_;
  });
  if (!alive_.load()) {
    ClientResult<Response> out;
    out.error = transportError(ClientStatus::Disconnected,
                               "pipelined connection is down");
    promise.set_value(std::move(out));
    return future;
  }
  request.version = kProtocolVersionV2;
  request.id = nextRequestId_++;
  // Encode under mu_: submissions from multiple threads must not interleave
  // frame bytes.  The frame lands in outbuf_ and reaches the wire either
  // right away (uncorked) or on the next batch flush.
  const auto appended =
      net::appendFrame(outbuf_, encodeRequest(request), frameLimits_);
  if (!appended.ok()) {
    // Local refusal (oversized payload): nothing touched the wire, so only
    // this request fails and the connection stays healthy.
    lock.unlock();
    ClientResult<Response> out;
    out.error =
        transportError(fromFrameStatus(appended.status), appended.message);
    promise.set_value(std::move(out));
    return future;
  }
  pending_.emplace(request.id, std::move(promise));
  // A full window means the caller is about to block on a response, so
  // every buffered frame must be on the wire — otherwise the responses it
  // waits for could never come.
  const bool mustFlush = !corked_ || pending_.size() >= window_ ||
                         outbuf_.size() >= kCorkFlushBytes;
  if (mustFlush) {
    if (auto error = flushLocked()) {
      lock.unlock();
      stopping_.store(true);
      failAll(*error);  // resolves this request's promise too
    }
  }
  return future;
}

std::optional<ClientError> PipelinedClient::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  auto error = flushLocked();
  if (error.has_value()) {
    lock.unlock();
    stopping_.store(true);
    failAll(*error);
  }
  return error;
}

std::optional<ClientError> PipelinedClient::flushLocked() {
  if (outbuf_.empty()) return std::nullopt;
  // A stall here means the server is wedged AND the pipe is full; the
  // deadline converts that into a failed connection, not a hung client.
  const auto written =
      socket_.writeAll(outbuf_.data(), outbuf_.size(),
                       net::Deadline::after(config_.requestDeadline));
  outbuf_.clear();
  if (written.ok()) return std::nullopt;
  return transportError(written.status == net::IoStatus::Timeout
                            ? ClientStatus::Timeout
                            : ClientStatus::Disconnected,
                        written.message.empty()
                            ? net::toString(written.status)
                            : written.message);
}

void PipelinedClient::readerMain() {
  net::FrameDecoder decoder(frameLimits_);
  char buffer[65536];
  while (!stopping_.load()) {
    const auto readable =
        socket_.waitReadable(net::Deadline::after(kReaderSlice));
    if (readable.status == net::IoStatus::Timeout) continue;
    if (readable.status != net::IoStatus::Ok &&
        readable.status != net::IoStatus::Closed) {
      failAll(transportError(ClientStatus::Disconnected, readable.message));
      return;
    }
    const auto chunk = socket_.readSome(buffer, sizeof buffer);
    if (chunk.status == net::IoStatus::Closed) {
      failAll(transportError(ClientStatus::Disconnected,
                             "server closed the connection"));
      return;
    }
    if (chunk.status == net::IoStatus::Error) {
      failAll(transportError(ClientStatus::Disconnected, chunk.message));
      return;
    }
    decoder.feed(buffer, chunk.bytes);
    std::string payload;
    while (decoder.next(&payload)) {
      auto decoded = decodeResponse(payload);
      if (!decoded.ok()) {
        failAll(transportError(ClientStatus::ProtocolError, decoded.error));
        return;
      }
      Response& response = *decoded.response;
      // Adaptive window: shrink to the server's re-advertisement; restore
      // to the HELLO grant on the first unstamped frame.
      const std::uint32_t effective =
          response.advertisedWindow.has_value()
              ? std::clamp<std::uint32_t>(*response.advertisedWindow, 1,
                                          grantedWindow_)
              : grantedWindow_;
      if (response.ok) {
        // Unsolicited RESHAPED push: queue for drainReshapeEvents(); it
        // consumes no pending slot.
        if (auto* reshaped = std::get_if<ReshapesResult>(&response.result);
            reshaped != nullptr && reshaped->push) {
          std::unique_lock<std::mutex> lock(mu_);
          window_ = effective;
          for (auto& event : reshaped->events) {
            reshapes_.push_back(std::move(event));
          }
          lock.unlock();
          windowOpen_.notify_all();
          continue;
        }
      }
      std::unique_lock<std::mutex> lock(mu_);
      window_ = effective;
      auto node = pending_.extract(response.id);
      lock.unlock();
      windowOpen_.notify_all();
      if (node.empty()) continue;  // e.g. correlation id 0 after desync
      ClientResult<Response> out;
      if (!response.ok) {
        out.error = fromServerError(response);
      } else {
        out.value = std::move(response);
      }
      node.mapped().set_value(std::move(out));
    }
    if (decoder.failed()) {
      failAll(transportError(ClientStatus::ProtocolError, decoder.message()));
      return;
    }
  }
}

void PipelinedClient::failAll(const ClientError& error) {
  std::unordered_map<std::uint64_t, std::promise<ClientResult<Response>>>
      orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    alive_.store(false);
    orphans.swap(pending_);
  }
  windowOpen_.notify_all();
  for (auto& [id, promise] : orphans) {
    ClientResult<Response> out;
    out.error = error;
    promise.set_value(std::move(out));
  }
}

PipelinedClient::ResponseFuture PipelinedClient::negotiateAsync(
    const task::TunableJobSpec& spec, Time release) {
  Request request;
  request.command = Command::Negotiate;
  request.payload = NegotiateRequest{spec, release};
  return submit(std::move(request));
}

PipelinedClient::ResponseFuture PipelinedClient::cancelAsync(
    std::uint64_t jobId) {
  Request request;
  request.command = Command::Cancel;
  request.payload = CancelRequest{jobId};
  return submit(std::move(request));
}

PipelinedClient::ResponseFuture PipelinedClient::statsAsync() {
  Request request;
  request.command = Command::Stats;
  return submit(std::move(request));
}

PipelinedClient::ResponseFuture PipelinedClient::verifyAsync() {
  Request request;
  request.command = Command::Verify;
  return submit(std::move(request));
}

}  // namespace tprm::service
