// Blocking client for the tprmd negotiation service.
//
// The remote half of the paper's per-application QoS agent: it speaks the
// wire protocol (service/protocol.h) over one connection, with a
// configurable per-request deadline and retry-with-backoff on connect.
// Nothing throws across the wire boundary: every call returns a
// ClientResult carrying either the typed result or a ClientError.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "service/protocol.h"

namespace tprm::service {

struct ClientConfig {
  /// Unix-domain endpoint; when non-empty it wins over TCP.
  std::string unixPath;
  /// TCP loopback endpoint, used when unixPath is empty.
  std::string tcpHost = "127.0.0.1";
  std::uint16_t tcpPort = 0;

  /// Whole-call budget: connect (first call), send, and receive.
  std::chrono::milliseconds requestDeadline{5'000};
  /// Budget for one connect attempt.
  std::chrono::milliseconds connectTimeout{1'000};
  /// Connect attempts before giving up (>= 1).
  int connectAttempts = 5;
  /// Backoff before the second attempt; doubles each retry up to
  /// `maxConnectBackoff`.
  std::chrono::milliseconds connectBackoff{20};
  /// Cap on the per-retry backoff.  Without it the doubling grows without
  /// bound (20ms doubled 30 times is weeks), so a generous attempt budget
  /// against a slow-to-start server turned into one enormous sleep.
  std::chrono::milliseconds maxConnectBackoff{1'000};

  std::size_t maxFrameBytes = 1 << 20;

  /// Optional caller-owned registry.  When set, the client records connect
  /// attempts/failures and an end-to-end request latency histogram
  /// ("client.request_us": connect + send + receive as the caller sees it).
  /// Must outlive the client.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Sleep before each connect attempt under `config` (index 0 is the first
/// attempt: no sleep).  Exposed so retry timing is testable without a clock:
/// connectBackoff doubles per retry and clamps at maxConnectBackoff.
[[nodiscard]] std::vector<std::chrono::milliseconds> connectBackoffPlan(
    const ClientConfig& config);

enum class ClientStatus {
  Ok,
  ConnectFailed,   // all connect attempts exhausted
  Timeout,         // request deadline expired
  Disconnected,    // server closed the connection mid-call
  ProtocolError,   // malformed/oversized frame or undecodable response
  ServerError,     // server answered with an error (code/message carried)
  Busy,            // typed v2 backpressure: window exceeded or queue full —
                   // retriable, the connection stays healthy
};

[[nodiscard]] const char* toString(ClientStatus status);

struct ClientError {
  ClientStatus status = ClientStatus::Ok;
  /// Server error code for ServerError (e.g. "bad_request"); empty else.
  std::string code;
  std::string message;
};

/// A typed result or a typed error; never both.
template <typename T>
struct ClientResult {
  std::optional<T> value;
  ClientError error;

  [[nodiscard]] bool ok() const { return value.has_value(); }
  [[nodiscard]] const T& operator*() const { return *value; }
  [[nodiscard]] const T* operator->() const { return &*value; }
};

/// Narrows a raw Response to its typed result, converting a wrong-variant
/// answer (server bug or crossed wires) into a ProtocolError.  A server
/// `busy` error surfaces as ClientStatus::Busy so retry loops need no
/// string matching.
template <typename T>
[[nodiscard]] ClientResult<T> extractResult(ClientResult<Response> response) {
  ClientResult<T> out;
  if (!response.ok()) {
    out.error = std::move(response.error);
    return out;
  }
  if (auto* value = std::get_if<T>(&response.value->result)) {
    out.value = std::move(*value);
    return out;
  }
  out.error.status = ClientStatus::ProtocolError;
  out.error.message = "response carries an unexpected result type";
  return out;
}

class QoSAgentClient {
 public:
  explicit QoSAgentClient(ClientConfig config);
  ~QoSAgentClient() = default;

  QoSAgentClient(const QoSAgentClient&) = delete;
  QoSAgentClient& operator=(const QoSAgentClient&) = delete;

  /// Connects eagerly (calls also connect lazily).  Useful to surface
  /// endpoint problems before the first negotiation.
  [[nodiscard]] std::optional<ClientError> connect();

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  void close() { socket_.close(); }

  /// Static negotiation (Section 3.1) across the wire: sends every chain of
  /// `spec`, receives the decision.  `release` is clamped forward to the
  /// arbitrator's clock server-side.
  [[nodiscard]] ClientResult<NegotiateResult> negotiate(
      const task::TunableJobSpec& spec, Time release);

  [[nodiscard]] ClientResult<CancelResult> cancel(std::uint64_t jobId);
  [[nodiscard]] ClientResult<ResizeResult> resize(int processors, Time when);
  [[nodiscard]] ClientResult<StatsResult> stats();
  [[nodiscard]] ClientResult<VerifyResult> verify();
  /// Drains reshape events the server buffered for this connection's jobs
  /// (elastic mode): v1 connections poll; v2 connections get pushes instead
  /// (PipelinedClient::drainReshapeEvents).
  [[nodiscard]] ClientResult<ReshapesResult> reshapes();

 private:
  /// Sends `request` and reads the matching response.  On transport failure
  /// the connection is closed so the next call reconnects.
  ClientResult<Response> call(Request request);

  /// Transport + decode; call() wraps it with the latency histogram.
  ClientResult<Response> callImpl(Request request);

  ClientConfig config_;
  net::FrameLimits frameLimits_;
  net::Socket socket_;
  std::uint64_t nextRequestId_ = 1;
  // Cached registry lookups (null when config_.metrics is null).
  obs::Counter* connectAttempts_ = nullptr;
  obs::Counter* connectFailures_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* requestErrors_ = nullptr;
  obs::HistogramMetric* requestLatencyUs_ = nullptr;
};

/// Pipelined wire-protocol-v2 client: many in-flight requests on one
/// connection, responses correlated by requestId (and therefore allowed to
/// arrive out of order).
///
/// connect() performs the HELLO handshake, requesting `window` concurrent
/// requests; the server grants min(requested, its own cap) and the granted
/// value governs submission: *Async() blocks (briefly — the server is
/// answering) once the window is full, so a well-behaved client never
/// triggers window `busy` errors.  Queue-full `busy` can still happen under
/// load and surfaces as ClientStatus::Busy — retriable without reconnecting.
///
/// Threading: any number of threads may submit; a dedicated reader thread
/// decodes responses (incremental FrameDecoder) and fulfils the matching
/// futures.  On disconnect every outstanding future fails with
/// Disconnected.
class PipelinedClient {
 public:
  /// `window`: in-flight requests to ask for in the HELLO handshake.
  ///
  /// `corked`: defer writes — submitted frames accumulate in a buffer that
  /// is flushed when the window fills, when the buffer passes ~128 KiB, or
  /// on an explicit flush().  Batching turns one syscall per request into
  /// one per batch (the big win on a busy pipe), but shifts a duty to the
  /// caller: flush() before blocking on any future submitted since the
  /// last flush, or its frame may never reach the server.  Leave corking
  /// off (the default) to have every submission hit the wire immediately.
  explicit PipelinedClient(ClientConfig config, std::uint32_t window = 32,
                           bool corked = false);
  ~PipelinedClient();

  PipelinedClient(const PipelinedClient&) = delete;
  PipelinedClient& operator=(const PipelinedClient&) = delete;

  /// Connects (with the ClientConfig retry plan) and runs the HELLO
  /// handshake.  Fails with ProtocolError against a server that does not
  /// speak v2.
  [[nodiscard]] std::optional<ClientError> connect();
  [[nodiscard]] bool connected() const { return alive_.load(); }
  /// Window granted by the server's HELLO response (0 before connect()).
  [[nodiscard]] std::uint32_t grantedWindow() const { return grantedWindow_; }
  /// Window currently honoured: the HELLO grant shrunk by the server's
  /// latest adaptive re-advertisement (== grantedWindow() when the server
  /// is unpressured).
  [[nodiscard]] std::uint32_t currentWindow();
  /// Fails all outstanding futures (Disconnected) and joins the reader.
  void close();

  /// Reshape events pushed by an elastic server (RESHAPED frames) since the
  /// last drain, oldest first.  Pushes arrive on the reader thread for jobs
  /// this connection negotiated.
  [[nodiscard]] std::vector<ReshapeEvent> drainReshapeEvents();

  using ResponseFuture = std::future<ClientResult<Response>>;

  /// Submit one command; the future resolves when its response arrives.
  /// Blocks while the granted window is full.  Narrow results with
  /// extractResult<NegotiateResult>(...) etc.
  [[nodiscard]] ResponseFuture negotiateAsync(const task::TunableJobSpec& spec,
                                              Time release);
  [[nodiscard]] ResponseFuture cancelAsync(std::uint64_t jobId);
  [[nodiscard]] ResponseFuture statsAsync();
  [[nodiscard]] ResponseFuture verifyAsync();

  /// Writes every buffered frame to the wire (no-op when uncorked or
  /// nothing is buffered).  On transport failure all outstanding futures
  /// fail with the returned error.
  [[nodiscard]] std::optional<ClientError> flush();

 private:
  ResponseFuture submit(Request request);
  void readerMain();
  /// Fails every pending future with `error` and marks the client dead.
  void failAll(const ClientError& error);
  /// Flushes outbuf_; requires mu_ held.  The caller must failAll() (after
  /// unlocking) when this reports an error.
  [[nodiscard]] std::optional<ClientError> flushLocked();

  ClientConfig config_;
  std::uint32_t requestedWindow_;
  std::uint32_t grantedWindow_ = 0;  // HELLO grant (cap for window_)
  std::uint32_t window_ = 0;         // honoured window; guarded by mu_
  bool corked_;
  net::FrameLimits frameLimits_;
  net::Socket socket_;
  std::thread reader_;
  std::atomic<bool> alive_{false};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable windowOpen_;       // pending_.size() < window_
  std::uint64_t nextRequestId_ = 1;          // guarded by mu_
  std::string outbuf_;                       // guarded by mu_ (corked mode)
  std::unordered_map<std::uint64_t, std::promise<ClientResult<Response>>>
      pending_;                              // guarded by mu_
  std::vector<ReshapeEvent> reshapes_;       // guarded by mu_
};

}  // namespace tprm::service
