// Blocking client for the tprmd negotiation service.
//
// The remote half of the paper's per-application QoS agent: it speaks the
// wire protocol (service/protocol.h) over one connection, with a
// configurable per-request deadline and retry-with-backoff on connect.
// Nothing throws across the wire boundary: every call returns a
// ClientResult carrying either the typed result or a ClientError.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "service/protocol.h"

namespace tprm::service {

struct ClientConfig {
  /// Unix-domain endpoint; when non-empty it wins over TCP.
  std::string unixPath;
  /// TCP loopback endpoint, used when unixPath is empty.
  std::string tcpHost = "127.0.0.1";
  std::uint16_t tcpPort = 0;

  /// Whole-call budget: connect (first call), send, and receive.
  std::chrono::milliseconds requestDeadline{5'000};
  /// Budget for one connect attempt.
  std::chrono::milliseconds connectTimeout{1'000};
  /// Connect attempts before giving up (>= 1).
  int connectAttempts = 5;
  /// Backoff before the second attempt; doubles each retry up to
  /// `maxConnectBackoff`.
  std::chrono::milliseconds connectBackoff{20};
  /// Cap on the per-retry backoff.  Without it the doubling grows without
  /// bound (20ms doubled 30 times is weeks), so a generous attempt budget
  /// against a slow-to-start server turned into one enormous sleep.
  std::chrono::milliseconds maxConnectBackoff{1'000};

  std::size_t maxFrameBytes = 1 << 20;

  /// Optional caller-owned registry.  When set, the client records connect
  /// attempts/failures and an end-to-end request latency histogram
  /// ("client.request_us": connect + send + receive as the caller sees it).
  /// Must outlive the client.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Sleep before each connect attempt under `config` (index 0 is the first
/// attempt: no sleep).  Exposed so retry timing is testable without a clock:
/// connectBackoff doubles per retry and clamps at maxConnectBackoff.
[[nodiscard]] std::vector<std::chrono::milliseconds> connectBackoffPlan(
    const ClientConfig& config);

enum class ClientStatus {
  Ok,
  ConnectFailed,   // all connect attempts exhausted
  Timeout,         // request deadline expired
  Disconnected,    // server closed the connection mid-call
  ProtocolError,   // malformed/oversized frame or undecodable response
  ServerError,     // server answered with an error (code/message carried)
};

[[nodiscard]] const char* toString(ClientStatus status);

struct ClientError {
  ClientStatus status = ClientStatus::Ok;
  /// Server error code for ServerError (e.g. "bad_request"); empty else.
  std::string code;
  std::string message;
};

/// A typed result or a typed error; never both.
template <typename T>
struct ClientResult {
  std::optional<T> value;
  ClientError error;

  [[nodiscard]] bool ok() const { return value.has_value(); }
  [[nodiscard]] const T& operator*() const { return *value; }
  [[nodiscard]] const T* operator->() const { return &*value; }
};

class QoSAgentClient {
 public:
  explicit QoSAgentClient(ClientConfig config);
  ~QoSAgentClient() = default;

  QoSAgentClient(const QoSAgentClient&) = delete;
  QoSAgentClient& operator=(const QoSAgentClient&) = delete;

  /// Connects eagerly (calls also connect lazily).  Useful to surface
  /// endpoint problems before the first negotiation.
  [[nodiscard]] std::optional<ClientError> connect();

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  void close() { socket_.close(); }

  /// Static negotiation (Section 3.1) across the wire: sends every chain of
  /// `spec`, receives the decision.  `release` is clamped forward to the
  /// arbitrator's clock server-side.
  [[nodiscard]] ClientResult<NegotiateResult> negotiate(
      const task::TunableJobSpec& spec, Time release);

  [[nodiscard]] ClientResult<CancelResult> cancel(std::uint64_t jobId);
  [[nodiscard]] ClientResult<ResizeResult> resize(int processors, Time when);
  [[nodiscard]] ClientResult<StatsResult> stats();
  [[nodiscard]] ClientResult<VerifyResult> verify();

 private:
  /// Sends `request` and reads the matching response.  On transport failure
  /// the connection is closed so the next call reconnects.
  ClientResult<Response> call(Request request);

  /// Transport + decode; call() wraps it with the latency histogram.
  ClientResult<Response> callImpl(Request request);

  ClientConfig config_;
  net::FrameLimits frameLimits_;
  net::Socket socket_;
  std::uint64_t nextRequestId_ = 1;
  // Cached registry lookups (null when config_.metrics is null).
  obs::Counter* connectAttempts_ = nullptr;
  obs::Counter* connectFailures_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* requestErrors_ = nullptr;
  obs::HistogramMetric* requestLatencyUs_ = nullptr;
};

}  // namespace tprm::service
