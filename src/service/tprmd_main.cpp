// tprmd — the TPRM QoS arbitrator as a daemon.
//
//   tprmd --unix=/tmp/tprmd.sock            # Unix-domain endpoint
//   tprmd --tcp-port=7411                   # TCP loopback endpoint
//   tprmd --procs=64 --unix=... --tcp-port=0
//
// Runs until SIGINT/SIGTERM, then drains gracefully: in-flight
// negotiations complete and are answered before the process exits.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/flags.h"
#include "common/log.h"
#include "service/server.h"

namespace {

std::atomic<bool> gShutdown{false};

void onSignal(int) { gShutdown.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace tprm;
  const Flags flags(argc, argv);
  const auto unknown = flags.unknownAgainst(
      {"procs", "unix", "tcp-port", "max-frame-kb", "queue-cap",
       "max-sessions", "idle-timeout-ms", "io-timeout-ms", "verbose"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "tprmd: unknown flag --%s\n", unknown.front().c_str());
    return 2;
  }
  if (flags.getBool("verbose", false)) setLogLevel(LogLevel::Info);

  service::ServerConfig config;
  config.processors = static_cast<int>(flags.getInt("procs", 32));
  config.unixPath = flags.getString("unix", "");
  if (flags.has("tcp-port")) {
    config.tcpPort = static_cast<std::uint16_t>(flags.getInt("tcp-port", 0));
  }
  if (config.unixPath.empty() && !config.tcpPort.has_value()) {
    config.unixPath = "/tmp/tprmd.sock";
  }
  config.maxFrameBytes =
      static_cast<std::size_t>(flags.getInt("max-frame-kb", 1024)) * 1024;
  config.commandQueueCapacity =
      static_cast<std::size_t>(flags.getInt("queue-cap", 256));
  config.maxSessions =
      static_cast<std::size_t>(flags.getInt("max-sessions", 128));
  config.idleTimeout =
      std::chrono::milliseconds(flags.getInt("idle-timeout-ms", 30'000));
  config.ioTimeout =
      std::chrono::milliseconds(flags.getInt("io-timeout-ms", 5'000));

  service::NegotiationServer server(config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "tprmd: failed to start: %s\n", error.c_str());
    return 1;
  }
  if (!server.unixPath().empty()) {
    std::printf("tprmd: listening on unix:%s\n", server.unixPath().c_str());
  }
  if (server.tcpPort() != 0) {
    std::printf("tprmd: listening on tcp:127.0.0.1:%u\n",
                static_cast<unsigned>(server.tcpPort()));
  }
  std::printf("tprmd: managing %d processors\n", config.processors);
  std::fflush(stdout);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (!gShutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("tprmd: draining...\n");
  server.stop();
  const auto counters = server.counters();
  std::printf("tprmd: served %llu commands over %llu connections; bye\n",
              static_cast<unsigned long long>(counters.commandsExecuted),
              static_cast<unsigned long long>(counters.connectionsAccepted));
  return 0;
}
