// tprmd — the TPRM QoS arbitrator as a daemon.
//
//   tprmd --unix=/tmp/tprmd.sock            # Unix-domain endpoint
//   tprmd --tcp-port=7411                   # TCP loopback endpoint
//   tprmd --procs=64 --unix=... --tcp-port=0
//   tprmd --procs=64 --shards=4             # sharded parallel admission
//   tprmd --event-loops=4 --max-inflight=64 # I/O and pipelining tuning
//   tprmd --elastic=min-quality-loss        # arbitrator-initiated reshaping
//
// Event loop:
//   Connections are served by --event-loops nonblocking epoll threads
//   (default 2); --max-inflight caps the per-connection window a pipelined
//   (wire protocol v2) client can negotiate via HELLO, and --worker-batch
//   sets how many queued commands a shard worker drains per wakeup.
//
// Sharding:
//   --shards=K partitions the machine across K arbitrator shards with
//   parallel admission (K=1, the default, is the classic single-writer
//   arbitrator with identical decisions).  --no-spill keeps rejected jobs
//   on their home shard; --gang admits jobs too wide for any single shard
//   by reserving width fragments across shards (two-phase trial reserve);
//   --rebalance-interval-ms=N runs the capacity rebalancer every N ms
//   (0, the default, disables it).
//
// Elastic mode:
//   --elastic[=POLICY] turns rejections into quality trades: on admission
//   failure the arbitrator demotes admitted-but-not-yet-started malleable
//   jobs down their own offered chains to make room, and promotes them
//   back when load drops.  POLICY is the victim order — min-quality-loss
//   (default), most-recent-first, or proportional-share.  Wire protocol v2
//   clients receive RESHAPED push frames; v1 clients poll with RESHAPES.
//
// Recording:
//   --record-out=FILE appends every decoded request frame (arrival order,
//   with inter-arrival timing) to a binary wire trace; tools/tprm_replay
//   plays it back and checks decisions (see docs/trace_format.md).
//
// Observability:
//   --metrics-out=FILE writes one compact-JSON observability snapshot per
//   --metrics-interval-ms (default 1000) — JSON-lines, ready for jq/tail.
//   SIGUSR1 dumps a pretty snapshot to stderr on demand.
//   --no-metrics turns the layer off entirely.
//
// Runs until SIGINT/SIGTERM, then drains gracefully: in-flight
// negotiations complete and are answered before the process exits.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/flags.h"
#include "common/log.h"
#include "elastic/reshaper.h"
#include "service/server.h"

namespace {

std::atomic<bool> gShutdown{false};
std::atomic<bool> gDumpMetrics{false};

void onSignal(int) { gShutdown.store(true); }
void onDumpSignal(int) { gDumpMetrics.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace tprm;
  const Flags flags(argc, argv);
  const auto unknown = flags.unknownAgainst(
      {"procs", "unix", "tcp-port", "max-frame-kb", "queue-cap",
       "max-sessions", "idle-timeout-ms", "io-timeout-ms", "verbose",
       "metrics-out", "metrics-interval-ms", "trace-cap", "no-metrics",
       "shards", "no-spill", "gang", "rebalance-interval-ms", "record-out",
       "event-loops", "max-inflight", "worker-batch", "elastic", "queue"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "tprmd: unknown flag --%s\n", unknown.front().c_str());
    return 2;
  }
  if (flags.getBool("verbose", false)) setLogLevel(LogLevel::Info);

  service::ServerConfig config;
  config.processors = static_cast<int>(flags.getInt("procs", 32));
  config.shards = static_cast<int>(flags.getInt("shards", 1));
  if (config.shards < 1 || config.shards > config.processors) {
    std::fprintf(stderr,
                 "tprmd: --shards must be in [1, --procs] (got %d of %d)\n",
                 config.shards, config.processors);
    return 2;
  }
  config.eventLoops = static_cast<int>(flags.getInt("event-loops", 2));
  if (config.eventLoops < 1) {
    std::fprintf(stderr, "tprmd: --event-loops must be >= 1 (got %d)\n",
                 config.eventLoops);
    return 2;
  }
  config.maxInFlightPerConnection =
      static_cast<std::size_t>(flags.getInt("max-inflight", 64));
  config.workerBatch =
      static_cast<std::size_t>(flags.getInt("worker-batch", 32));
  config.shardSpill = !flags.getBool("no-spill", false);
  config.shardGang = flags.getBool("gang", false);
  if (config.shardGang && config.shards < 2) {
    std::fprintf(stderr, "tprmd: --gang requires --shards >= 2\n");
    return 2;
  }
  config.rebalanceIntervalMs =
      static_cast<int>(flags.getInt("rebalance-interval-ms", 0));
  config.unixPath = flags.getString("unix", "");
  if (flags.has("tcp-port")) {
    config.tcpPort = static_cast<std::uint16_t>(flags.getInt("tcp-port", 0));
  }
  if (config.unixPath.empty() && !config.tcpPort.has_value()) {
    config.unixPath = "/tmp/tprmd.sock";
  }
  config.maxFrameBytes =
      static_cast<std::size_t>(flags.getInt("max-frame-kb", 1024)) * 1024;
  config.commandQueueCapacity =
      static_cast<std::size_t>(flags.getInt("queue-cap", 256));
  if (flags.has("queue")) {
    const std::string queueName = flags.getString("queue", "mutex");
    const auto kind = qos::queueKindFromName(queueName);
    if (!kind.has_value()) {
      std::fprintf(stderr,
                   "tprmd: --queue=%s is not a queue kind (want "
                   "mutex | mpsc | steal)\n",
                   queueName.c_str());
      return 2;
    }
    config.queueKind = *kind;
  }
  config.maxSessions =
      static_cast<std::size_t>(flags.getInt("max-sessions", 128));
  config.idleTimeout =
      std::chrono::milliseconds(flags.getInt("idle-timeout-ms", 30'000));
  config.ioTimeout =
      std::chrono::milliseconds(flags.getInt("io-timeout-ms", 5'000));
  // The Reshaper outlives the server (ServerConfig holds a raw pointer); one
  // instance serves every shard — its orders are pure functions.
  std::optional<elastic::Reshaper> reshaper;
  if (flags.has("elastic")) {
    const std::string policyName = flags.getString("elastic", "");
    auto policy = elastic::VictimPolicy::MinQualityLoss;
    if (policyName != "true") {  // bare --elastic parses as "true"
      const auto parsed = elastic::victimPolicyFromName(policyName);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "tprmd: --elastic=%s is not a policy (want "
                     "min-quality-loss | most-recent-first | "
                     "proportional-share)\n",
                     policyName.c_str());
        return 2;
      }
      policy = *parsed;
    }
    reshaper.emplace(policy);
    config.reshapePolicy = &*reshaper;
  }
  config.observability = !flags.getBool("no-metrics", false);
  config.traceCapacity =
      static_cast<std::size_t>(flags.getInt("trace-cap", 256));
  config.recordPath = flags.getString("record-out", "");

  const std::string metricsPath = flags.getString("metrics-out", "");
  const auto metricsInterval =
      std::chrono::milliseconds(flags.getInt("metrics-interval-ms", 1'000));
  if (!metricsPath.empty() && !config.observability) {
    std::fprintf(stderr,
                 "tprmd: --metrics-out requires metrics (drop --no-metrics)\n");
    return 2;
  }

  // Install handlers before the server exists: a SIGUSR1 (or Ctrl-C) that
  // lands mid-startup must not take the whole process down with the
  // default disposition.
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGUSR1, onDumpSignal);
  std::signal(SIGPIPE, SIG_IGN);

  service::NegotiationServer server(config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "tprmd: failed to start: %s\n", error.c_str());
    return 1;
  }
  FILE* metricsOut = nullptr;
  if (!metricsPath.empty()) {
    metricsOut = std::fopen(metricsPath.c_str(), "w");
    if (metricsOut == nullptr) {
      std::fprintf(stderr, "tprmd: cannot open --metrics-out file %s\n",
                   metricsPath.c_str());
      server.stop();
      return 1;
    }
  }
  if (!server.unixPath().empty()) {
    std::printf("tprmd: listening on unix:%s\n", server.unixPath().c_str());
  }
  if (server.tcpPort() != 0) {
    std::printf("tprmd: listening on tcp:127.0.0.1:%u\n",
                static_cast<unsigned>(server.tcpPort()));
  }
  if (config.shards > 1) {
    std::printf("tprmd: managing %d processors across %d shards%s\n",
                config.processors, config.shards,
                config.shardGang ? " (gang admission on)" : "");
  } else {
    std::printf("tprmd: managing %d processors\n", config.processors);
  }
  if (reshaper.has_value()) {
    std::printf("tprmd: elastic reshaping on (%s)\n",
                elastic::toString(reshaper->policy()).c_str());
  }
  if (config.queueKind != qos::QueueKind::Mutex) {
    std::printf("tprmd: handoff queues: %s\n",
                qos::toString(config.queueKind));
  }
  std::fflush(stdout);

  auto nextSnapshot = std::chrono::steady_clock::now() + metricsInterval;
  while (!gShutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (gDumpMetrics.exchange(false)) {
      std::fprintf(stderr, "%s\n",
                   server.observabilitySnapshot().dump().c_str());
      std::fflush(stderr);
    }
    if (metricsOut != nullptr &&
        std::chrono::steady_clock::now() >= nextSnapshot) {
      std::fprintf(metricsOut, "%s\n",
                   server.observabilitySnapshot().dumpCompact().c_str());
      std::fflush(metricsOut);
      nextSnapshot += metricsInterval;
    }
  }

  std::printf("tprmd: draining...\n");
  server.stop();
  if (metricsOut != nullptr) {
    // Final post-drain snapshot so the file ends with the complete totals.
    std::fprintf(metricsOut, "%s\n",
                 server.observabilitySnapshot().dumpCompact().c_str());
    std::fclose(metricsOut);
  }
  const auto counters = server.counters();
  std::printf("tprmd: served %llu commands over %llu connections; bye\n",
              static_cast<unsigned long long>(counters.commandsExecuted),
              static_cast<unsigned long long>(counters.connectionsAccepted));
  return 0;
}
