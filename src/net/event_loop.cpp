#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace tprm::net {

namespace {

std::string errnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::uint32_t toEpollMask(std::uint32_t interest) {
  std::uint32_t mask = 0;
  // RDHUP rides with read interest: a connection that has paused reading
  // (backpressure) must not level-trigger on a half-closed peer forever.
  if ((interest & Epoll::kRead) != 0) mask |= EPOLLIN | EPOLLRDHUP;
  if ((interest & Epoll::kWrite) != 0) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

Epoll& Epoll::operator=(Epoll&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Epoll::open(std::string* error) {
  close();
  fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd_ < 0) {
    if (error != nullptr) *error = errnoMessage("epoll_create1");
    return false;
  }
  return true;
}

void Epoll::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Epoll::add(int fd, std::uint32_t interest, void* data,
                std::string* error) {
  epoll_event ev{};
  ev.events = toEpollMask(interest);
  ev.data.ptr = data;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    if (error != nullptr) *error = errnoMessage("epoll_ctl(ADD)");
    return false;
  }
  return true;
}

bool Epoll::modify(int fd, std::uint32_t interest, void* data,
                   std::string* error) {
  epoll_event ev{};
  ev.events = toEpollMask(interest);
  ev.data.ptr = data;
  if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    if (error != nullptr) *error = errnoMessage("epoll_ctl(MOD)");
    return false;
  }
  return true;
}

void Epoll::remove(int fd) {
  epoll_event ev{};  // ignored for DEL, required pre-2.6.9
  ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, &ev);
}

bool Epoll::wait(int timeoutMs, std::vector<Event>* events,
                 std::string* error) {
  events->clear();
  epoll_event ready[64];
  int n;
  for (;;) {
    n = ::epoll_wait(fd_, ready, 64, timeoutMs);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    if (error != nullptr) *error = errnoMessage("epoll_wait");
    return false;
  }
  events->reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event event;
    event.data = ready[i].data.ptr;
    event.readable = (ready[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
    event.writable = (ready[i].events & EPOLLOUT) != 0;
    event.hangup = (ready[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    events->push_back(event);
  }
  return true;
}

WakeupFd& WakeupFd::operator=(WakeupFd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool WakeupFd::open(std::string* error) {
  close();
  fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd_ < 0) {
    if (error != nullptr) *error = errnoMessage("eventfd");
    return false;
  }
  return true;
}

void WakeupFd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WakeupFd::signal() {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is saturated — the pending wakeup already
  // guarantees the loop will run, so dropping this increment is correct.
  for (;;) {
    const ssize_t rc = ::write(fd_, &one, sizeof one);
    if (rc >= 0 || errno != EINTR) break;
  }
}

void WakeupFd::drain() {
  std::uint64_t count = 0;
  for (;;) {
    const ssize_t rc = ::read(fd_, &count, sizeof count);
    if (rc >= 0 || errno != EINTR) break;
  }
}

}  // namespace tprm::net
