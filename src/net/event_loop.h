// epoll + eventfd primitives for the nonblocking event-loop server.
//
// Scope: thin RAII wrappers only — no callback registry, no reactor
// framework.  The service layer owns the loop structure (which thread polls,
// what a ready fd means); this layer owns the fds and the errno handling.
// Level-triggered epoll is used throughout: readers drain until WouldBlock,
// writers flush until WouldBlock, and a re-armed interest set simply fires
// again if data is still pending — no edge-trigger starvation hazards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tprm::net {

/// Owning wrapper for an epoll instance.
class Epoll {
 public:
  Epoll() = default;
  ~Epoll() { close(); }
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;
  Epoll(Epoll&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Epoll& operator=(Epoll&& other) noexcept;

  /// Creates the epoll fd (CLOEXEC).  Returns false with `error` set on
  /// failure.
  [[nodiscard]] bool open(std::string* error);
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

  /// Interest bits for add/modify (mapped to EPOLLIN/EPOLLOUT internally).
  static constexpr std::uint32_t kRead = 1u << 0;
  static constexpr std::uint32_t kWrite = 1u << 1;

  /// One ready fd from wait().  `readable` fires for EPOLLIN and for
  /// EPOLLRDHUP (pending data plus EOF — read until Closed); `writable`
  /// mirrors EPOLLOUT; `hangup` is EPOLLHUP/EPOLLERR, which cannot be
  /// masked and mean the connection is gone both ways.
  struct Event {
    void* data = nullptr;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  /// Registers `fd` with the given interest; `data` comes back verbatim in
  /// Event::data (typically a connection pointer).
  [[nodiscard]] bool add(int fd, std::uint32_t interest, void* data,
                         std::string* error);
  /// Changes the interest set for an already-registered fd.
  [[nodiscard]] bool modify(int fd, std::uint32_t interest, void* data,
                            std::string* error);
  /// Unregisters `fd`.  Safe to call for fds about to be closed.
  void remove(int fd);

  /// Waits up to `timeoutMs` (-1 = forever) and appends ready events to
  /// `events` (cleared first).  Returns false on an unrecoverable epoll
  /// error; EINTR is retried internally.
  [[nodiscard]] bool wait(int timeoutMs, std::vector<Event>* events,
                          std::string* error);

 private:
  int fd_ = -1;
};

/// eventfd-based wakeup channel: any thread may signal(), the owning loop
/// thread drains it when the fd polls readable.  This is the MPSC handoff
/// the shard workers use to return responses to a connection's loop.
class WakeupFd {
 public:
  WakeupFd() = default;
  ~WakeupFd() { close(); }
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;
  WakeupFd(WakeupFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  WakeupFd& operator=(WakeupFd&& other) noexcept;

  [[nodiscard]] bool open(std::string* error);
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Posts one wakeup.  Async-signal-safe, callable from any thread; the
  /// counter saturates rather than blocks, so signalling an un-drained fd
  /// is cheap and never stalls a shard worker.
  void signal();
  /// Consumes all pending wakeups (the loop thread calls this when the fd
  /// polls readable, then drains its inbox).
  void drain();

 private:
  int fd_ = -1;
};

}  // namespace tprm::net
