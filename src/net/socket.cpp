#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

namespace tprm::net {

namespace {

std::string errnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Polls `fd` for `events` until the deadline.  Returns Ok when ready,
/// Timeout when the deadline passes, Error on poll failure.
IoStatus pollFor(int fd, short events, const Deadline& deadline) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, deadline.pollTimeoutMs());
    if (rc > 0) return IoStatus::Ok;
    if (rc == 0) {
      if (deadline.expired()) return IoStatus::Timeout;
      continue;  // sub-millisecond remainder rounded to 0
    }
    if (errno == EINTR) continue;
    return IoStatus::Error;
  }
}

}  // namespace

int Deadline::pollTimeoutMs() const {
  if (infinite_) return -1;
  const auto remaining = at_ - Clock::now();
  if (remaining <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining);
  // Round up so a 0.4ms remainder polls for 1ms instead of spinning.
  const std::int64_t count =
      ms.count() + (ms < remaining ? 1 : 0);
  return static_cast<int>(std::min<std::int64_t>(count, 3'600'000));
}

const char* toString(IoStatus status) {
  switch (status) {
    case IoStatus::Ok: return "ok";
    case IoStatus::Timeout: return "timeout";
    case IoStatus::Closed: return "closed";
    case IoStatus::Error: return "error";
    case IoStatus::WouldBlock: return "would-block";
  }
  return "unknown";
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoResult Socket::waitReadable(const Deadline& deadline) {
  const IoStatus status = pollFor(fd_, POLLIN, deadline);
  if (status == IoStatus::Error) {
    return {IoStatus::Error, errnoMessage("poll")};
  }
  return {status, {}};
}

IoResult Socket::waitWritable(const Deadline& deadline) {
  const IoStatus status = pollFor(fd_, POLLOUT, deadline);
  if (status == IoStatus::Error) {
    return {IoStatus::Error, errnoMessage("poll")};
  }
  return {status, {}};
}

IoResult Socket::readExact(void* buffer, std::size_t n,
                           const Deadline& deadline) {
  char* out = static_cast<char*>(buffer);
  std::size_t done = 0;
  while (done < n) {
    const IoStatus ready = pollFor(fd_, POLLIN, deadline);
    if (ready != IoStatus::Ok) {
      if (ready == IoStatus::Error) {
        return {IoStatus::Error, errnoMessage("poll")};
      }
      return {ready, {}};
    }
    const ssize_t rc = ::recv(fd_, out + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      // Orderly shutdown.  Before any byte it is a clean close; inside a
      // message it means the peer truncated the stream.
      if (done == 0) return {IoStatus::Closed, {}};
      return {IoStatus::Error, "peer closed mid-message"};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
    return {IoStatus::Error, errnoMessage("recv")};
  }
  return {IoStatus::Ok, {}};
}

IoResult Socket::writeAll(const void* buffer, std::size_t n,
                          const Deadline& deadline) {
  const char* in = static_cast<const char*>(buffer);
  std::size_t done = 0;
  while (done < n) {
    const IoStatus ready = pollFor(fd_, POLLOUT, deadline);
    if (ready != IoStatus::Ok) {
      if (ready == IoStatus::Error) {
        return {IoStatus::Error, errnoMessage("poll")};
      }
      return {ready, {}};
    }
#ifdef MSG_NOSIGNAL
    const ssize_t rc = ::send(fd_, in + done, n - done, MSG_NOSIGNAL);
#else
    const ssize_t rc = ::send(fd_, in + done, n - done, 0);
#endif
    if (rc >= 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
    if (errno == EPIPE || errno == ECONNRESET) {
      return {IoStatus::Closed, {}};
    }
    return {IoStatus::Error, errnoMessage("send")};
  }
  return {IoStatus::Ok, {}};
}

IoResult Socket::setNonBlocking(bool enabled) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return {IoStatus::Error, errnoMessage("fcntl")};
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (next != flags && ::fcntl(fd_, F_SETFL, next) < 0) {
    return {IoStatus::Error, errnoMessage("fcntl")};
  }
  return {IoStatus::Ok, {}};
}

IoChunk Socket::readSome(void* buffer, std::size_t n) {
  for (;;) {
    const ssize_t rc = ::recv(fd_, buffer, n, 0);
    if (rc > 0) return {IoStatus::Ok, static_cast<std::size_t>(rc), {}};
    if (rc == 0) return {IoStatus::Closed, 0, {}};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::WouldBlock, 0, {}};
    }
    if (errno == ECONNRESET) return {IoStatus::Closed, 0, {}};
    return {IoStatus::Error, 0, errnoMessage("recv")};
  }
}

IoChunk Socket::writeSome(const void* buffer, std::size_t n) {
  const char* in = static_cast<const char*>(buffer);
  std::size_t done = 0;
  while (done < n) {
#ifdef MSG_NOSIGNAL
    const ssize_t rc = ::send(fd_, in + done, n - done, MSG_NOSIGNAL);
#else
    const ssize_t rc = ::send(fd_, in + done, n - done, 0);
#endif
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) continue;  // treat a zero send as retryable progress
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Short write: report how far we got so the caller resumes from
      // buffer + bytes once POLLOUT fires, instead of treating the partial
      // transfer as a failure.
      return {IoStatus::WouldBlock, done, {}};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return {IoStatus::Closed, done, {}};
    }
    return {IoStatus::Error, done, errnoMessage("send")};
  }
  return {IoStatus::Ok, done, {}};
}

IoChunk Socket::writevSome(const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
  for (;;) {
#ifdef MSG_NOSIGNAL
    const ssize_t rc = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
#else
    const ssize_t rc = ::sendmsg(fd_, &msg, 0);
#endif
    if (rc >= 0) return {IoStatus::Ok, static_cast<std::size_t>(rc), {}};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::WouldBlock, 0, {}};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return {IoStatus::Closed, 0, {}};
    }
    return {IoStatus::Error, 0, errnoMessage("sendmsg")};
  }
}

namespace {

/// Completes a non-blocking connect with a deadline, then restores blocking
/// mode.  Returns a ConnectResult either way.
ConnectResult finishConnect(int fd, const sockaddr* addr, socklen_t len,
                            const Deadline& deadline) {
  Socket guard(fd);  // closes on every early return
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return {Socket(), errnoMessage("fcntl")};
  }
  if (::connect(fd, addr, len) < 0) {
    if (errno != EINPROGRESS) {
      return {Socket(), errnoMessage("connect")};
    }
    const IoStatus ready = pollFor(fd, POLLOUT, deadline);
    if (ready == IoStatus::Timeout) {
      return {Socket(), "connect: timed out"};
    }
    if (ready == IoStatus::Error) {
      return {Socket(), errnoMessage("poll")};
    }
    int soError = 0;
    socklen_t soLen = sizeof soError;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &soLen) < 0) {
      return {Socket(), errnoMessage("getsockopt")};
    }
    if (soError != 0) {
      return {Socket(), std::string("connect: ") + std::strerror(soError)};
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return {Socket(), errnoMessage("fcntl")};
  }
  return {std::move(guard), {}};
}

}  // namespace

ConnectResult connectUnix(const std::string& path, const Deadline& deadline) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return {Socket(), "unix path too long: " + path};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return {Socket(), errnoMessage("socket")};
  return finishConnect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr, deadline);
}

ConnectResult connectTcp(const std::string& host, std::uint16_t port,
                         const Deadline& deadline) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return {Socket(), "invalid IPv4 address: " + host};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {Socket(), errnoMessage("socket")};
  return finishConnect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr, deadline);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_),
      unixPath_(std::move(other.unixPath_)) {
  other.fd_ = -1;
  other.port_ = 0;
  other.unixPath_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    unixPath_ = std::move(other.unixPath_);
    other.fd_ = -1;
    other.port_ = 0;
    other.unixPath_.clear();
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unixPath_.empty()) {
    ::unlink(unixPath_.c_str());
    unixPath_.clear();
  }
}

Listener Listener::listenUnix(const std::string& path, std::string* error) {
  Listener listener;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "unix path too long: " + path;
    return listener;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errnoMessage("socket");
    return listener;
  }
  ::unlink(path.c_str());  // replace a stale socket file from a crashed run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, SOMAXCONN) < 0) {
    if (error != nullptr) *error = errnoMessage("bind/listen");
    ::close(fd);
    return listener;
  }
  listener.fd_ = fd;
  listener.unixPath_ = path;
  return listener;
}

Listener Listener::listenTcp(std::uint16_t port, std::string* error) {
  Listener listener;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errnoMessage("socket");
    return listener;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, SOMAXCONN) < 0) {
    if (error != nullptr) *error = errnoMessage("bind/listen");
    ::close(fd);
    return listener;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    if (error != nullptr) *error = errnoMessage("getsockname");
    ::close(fd);
    return listener;
  }
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Listener::AcceptResult Listener::accept(const Deadline& deadline) {
  AcceptResult result;
  for (;;) {
    const IoStatus ready = pollFor(fd_, POLLIN, deadline);
    if (ready != IoStatus::Ok) {
      result.status = ready;
      if (ready == IoStatus::Error) result.message = errnoMessage("poll");
      return result;
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      result.socket = Socket(fd);
      return result;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;
    }
    result.status = IoStatus::Error;
    result.message = errnoMessage("accept");
    return result;
  }
}

}  // namespace tprm::net
