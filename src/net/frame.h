// Length-prefixed message framing over a stream socket.
//
// Wire format: a 4-byte big-endian unsigned payload length followed by
// exactly that many payload bytes (JSON text in the negotiation protocol,
// but this layer is content-agnostic).  The length prefix is validated
// against a per-connection limit *before* any payload is read, so a
// malicious 4-GB declaration costs the server four bytes, not an
// allocation.  After a TooLarge or Error result the stream position is
// undefined and the connection must be closed; Timeout mid-frame likewise
// desynchronizes the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.h"

namespace tprm::net {

struct FrameLimits {
  /// Largest acceptable payload.  1 MiB comfortably holds a negotiation
  /// request with hundreds of execution paths while bounding per-connection
  /// memory.
  std::size_t maxPayloadBytes = 1 << 20;
};

enum class FrameStatus {
  Ok,
  Timeout,   // deadline expired (if mid-frame, the stream is desynced)
  Closed,    // clean EOF between frames
  TooLarge,  // declared length exceeds the limit; close the connection
  Error,     // I/O or protocol failure (message has the details)
};

struct FrameReadResult {
  FrameStatus status = FrameStatus::Ok;
  std::string payload;  // valid iff status == Ok
  std::string message;  // diagnostic for TooLarge/Error

  [[nodiscard]] bool ok() const { return status == FrameStatus::Ok; }
};

[[nodiscard]] const char* toString(FrameStatus status);

/// Reads one frame.  `idleDeadline` bounds the wait for the *first* byte
/// (how long a connection may sit silent); once a frame has started,
/// `ioDeadline` bounds the remainder (a peer that stalls mid-frame is cut
/// off).  Pass the same deadline twice for a single budget.
[[nodiscard]] FrameReadResult readFrame(Socket& socket,
                                        const FrameLimits& limits,
                                        const Deadline& idleDeadline,
                                        const Deadline& ioDeadline);

/// Writes one frame (length prefix + payload).  Refuses payloads over the
/// limit locally (FrameStatus::TooLarge) rather than sending them.
struct FrameWriteResult {
  FrameStatus status = FrameStatus::Ok;
  std::string message;

  [[nodiscard]] bool ok() const { return status == FrameStatus::Ok; }
};

[[nodiscard]] FrameWriteResult writeFrame(Socket& socket,
                                          std::string_view payload,
                                          const FrameLimits& limits,
                                          const Deadline& deadline);

/// Encodes one frame (4-byte big-endian length prefix + payload) into a
/// wire buffer, appending to `out`.  The event-loop server builds its
/// per-connection output buffers with this and flushes them with
/// Socket::writeSome; TooLarge is refused locally just like writeFrame.
[[nodiscard]] FrameWriteResult appendFrame(std::string& out,
                                           std::string_view payload,
                                           const FrameLimits& limits);

/// Incremental frame decoder: feed it any number of bytes in any chunking
/// (a single byte at a time works) and pull complete frames out.  The
/// length prefix is validated against the limit as soon as its fourth byte
/// arrives — before any payload is buffered — so an oversized declaration
/// costs four bytes, exactly like the blocking readFrame path.
///
/// Usage:
///   decoder.feed(data, n);
///   while (decoder.next(&payload)) { handle(payload); }
///   if (decoder.failed()) { close connection; }
///
/// After failed() reports true the stream is desynchronized and the
/// decoder refuses further input; the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {}) : limits_(limits) {}

  /// Buffers `n` more wire bytes.  No-op after a decode failure.
  void feed(const void* data, std::size_t n);

  /// Extracts the next complete frame into `payload`.  Returns false when
  /// more bytes are needed (or after a failure — check failed()).
  [[nodiscard]] bool next(std::string* payload);

  /// True once an oversized declaration has been seen.
  [[nodiscard]] bool failed() const { return failed_; }
  /// Diagnostic for the failure, empty otherwise.
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Bytes buffered but not yet returned (partial frame in progress).
  [[nodiscard]] std::size_t pendingBytes() const {
    return buffer_.size() - consumed_;
  }

 private:
  FrameLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool failed_ = false;
  std::string message_;
};

}  // namespace tprm::net
