#include "net/frame.h"

#include <cstring>

namespace tprm::net {

namespace {

FrameStatus fromIo(IoStatus status) {
  switch (status) {
    case IoStatus::Ok: return FrameStatus::Ok;
    case IoStatus::Timeout: return FrameStatus::Timeout;
    case IoStatus::Closed: return FrameStatus::Closed;
    case IoStatus::Error: return FrameStatus::Error;
    // The blocking read/write paths never see WouldBlock (they poll first);
    // mapping it to Error keeps the switch exhaustive.
    case IoStatus::WouldBlock: return FrameStatus::Error;
  }
  return FrameStatus::Error;
}

}  // namespace

const char* toString(FrameStatus status) {
  switch (status) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::Timeout: return "timeout";
    case FrameStatus::Closed: return "closed";
    case FrameStatus::TooLarge: return "frame too large";
    case FrameStatus::Error: return "error";
  }
  return "unknown";
}

FrameReadResult readFrame(Socket& socket, const FrameLimits& limits,
                          const Deadline& idleDeadline,
                          const Deadline& ioDeadline) {
  FrameReadResult result;

  // Idle wait: nothing consumed yet, so a timeout here leaves the stream
  // clean and the caller may keep the connection.
  const IoResult readable = socket.waitReadable(idleDeadline);
  if (!readable.ok()) {
    result.status = fromIo(readable.status);
    result.message = readable.message;
    return result;
  }

  unsigned char prefix[4];
  IoResult io = socket.readExact(prefix, sizeof prefix, ioDeadline);
  if (!io.ok()) {
    result.status = fromIo(io.status);
    result.message = io.message;
    return result;
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                               (static_cast<std::uint32_t>(prefix[1]) << 16) |
                               (static_cast<std::uint32_t>(prefix[2]) << 8) |
                               static_cast<std::uint32_t>(prefix[3]);
  if (length > limits.maxPayloadBytes) {
    result.status = FrameStatus::TooLarge;
    result.message = "declared payload of " + std::to_string(length) +
                     " bytes exceeds limit of " +
                     std::to_string(limits.maxPayloadBytes);
    return result;
  }
  result.payload.resize(length);
  if (length > 0) {
    io = socket.readExact(result.payload.data(), length, ioDeadline);
    if (!io.ok()) {
      result.payload.clear();
      // EOF or timeout inside a declared frame is a protocol violation, not
      // a clean close.
      result.status = io.status == IoStatus::Timeout ? FrameStatus::Timeout
                                                     : FrameStatus::Error;
      result.message = io.message.empty() ? "truncated frame" : io.message;
      return result;
    }
  }
  return result;
}

FrameWriteResult writeFrame(Socket& socket, std::string_view payload,
                            const FrameLimits& limits,
                            const Deadline& deadline) {
  FrameWriteResult result;
  if (payload.size() > limits.maxPayloadBytes) {
    result.status = FrameStatus::TooLarge;
    result.message = "refusing to send " + std::to_string(payload.size()) +
                     " byte payload (limit " +
                     std::to_string(limits.maxPayloadBytes) + ")";
    return result;
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {static_cast<unsigned char>(length >> 24),
                             static_cast<unsigned char>(length >> 16),
                             static_cast<unsigned char>(length >> 8),
                             static_cast<unsigned char>(length)};
  // One buffer, one writeAll: avoids a short TCP segment for the prefix and
  // keeps the write atomic with respect to the deadline.
  std::string wire;
  wire.reserve(sizeof prefix + payload.size());
  wire.append(reinterpret_cast<const char*>(prefix), sizeof prefix);
  wire.append(payload.data(), payload.size());
  const IoResult io = socket.writeAll(wire.data(), wire.size(), deadline);
  if (!io.ok()) {
    result.status = fromIo(io.status);
    result.message = io.message;
  }
  return result;
}

FrameWriteResult appendFrame(std::string& out, std::string_view payload,
                             const FrameLimits& limits) {
  FrameWriteResult result;
  if (payload.size() > limits.maxPayloadBytes) {
    result.status = FrameStatus::TooLarge;
    result.message = "refusing to send " + std::to_string(payload.size()) +
                     " byte payload (limit " +
                     std::to_string(limits.maxPayloadBytes) + ")";
    return result;
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {static_cast<unsigned char>(length >> 24),
                                   static_cast<unsigned char>(length >> 16),
                                   static_cast<unsigned char>(length >> 8),
                                   static_cast<unsigned char>(length)};
  out.append(reinterpret_cast<const char*>(prefix), sizeof prefix);
  out.append(payload.data(), payload.size());
  return result;
}

void FrameDecoder::feed(const void* data, std::size_t n) {
  if (failed_ || n == 0) return;
  // Compact once the consumed prefix dominates the buffer, so a long-lived
  // connection does not grow its input buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), n);
}

bool FrameDecoder::next(std::string* payload) {
  if (failed_) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t length = (static_cast<std::uint32_t>(p[0]) << 24) |
                               (static_cast<std::uint32_t>(p[1]) << 16) |
                               (static_cast<std::uint32_t>(p[2]) << 8) |
                               static_cast<std::uint32_t>(p[3]);
  if (length > limits_.maxPayloadBytes) {
    failed_ = true;
    message_ = "declared payload of " + std::to_string(length) +
               " bytes exceeds limit of " +
               std::to_string(limits_.maxPayloadBytes);
    return false;
  }
  if (available - 4 < length) return false;
  payload->assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + static_cast<std::size_t>(length);
  return true;
}

}  // namespace tprm::net
