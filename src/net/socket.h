// Thin POSIX socket layer for the negotiation service.
//
// Scope: blocking stream sockets (Unix-domain and TCP loopback) with
// explicit deadlines.  Every operation that can block takes a Deadline and
// polls; partial reads/writes and EINTR are handled here so the layers above
// (framing, protocol) only see "exactly n bytes or a typed failure".
// Nothing in this layer throws; errors are IoStatus values plus an errno
// description.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

struct iovec;  // <sys/uio.h>; kept out of this header on purpose

namespace tprm::net {

/// Absolute deadline on the steady clock.  Used instead of per-call timeouts
/// so a multi-step operation (connect, write request, read reply) shares one
/// budget.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Deadline `timeout` from now.
  [[nodiscard]] static Deadline after(std::chrono::milliseconds timeout) {
    return Deadline(Clock::now() + timeout);
  }
  /// Never expires.
  [[nodiscard]] static Deadline infinite() { return Deadline(); }

  [[nodiscard]] bool isInfinite() const { return infinite_; }
  [[nodiscard]] bool expired() const {
    return !infinite_ && Clock::now() >= at_;
  }
  /// Remaining budget as a poll(2) timeout: milliseconds (rounded up so a
  /// sub-millisecond remainder still waits), 0 when expired, -1 for
  /// infinite.
  [[nodiscard]] int pollTimeoutMs() const;

 private:
  Deadline() : infinite_(true) {}
  explicit Deadline(Clock::time_point at) : at_(at), infinite_(false) {}

  Clock::time_point at_{};
  bool infinite_;
};

/// How an I/O operation ended.
enum class IoStatus {
  Ok,
  Timeout,     // deadline expired mid-operation
  Closed,      // orderly EOF / EPIPE from the peer
  Error,       // errno-level failure (message has the details)
  WouldBlock,  // nonblocking op would block; retry when the fd is ready
};

struct IoResult {
  IoStatus status = IoStatus::Ok;
  std::string message;  // errno description, empty on Ok/Timeout/Closed

  [[nodiscard]] bool ok() const { return status == IoStatus::Ok; }
};

/// Outcome of a single nonblocking read/write attempt: how far it got plus
/// why it stopped.  `bytes` is meaningful for every status — a short write
/// that hit a full send buffer reports WouldBlock with the count already
/// transferred, so the caller can resume from `buffer + bytes` later.
struct IoChunk {
  IoStatus status = IoStatus::Ok;
  std::size_t bytes = 0;
  std::string message;  // errno description, empty unless status == Error

  [[nodiscard]] bool ok() const { return status == IoStatus::Ok; }
};

[[nodiscard]] const char* toString(IoStatus status);

/// Owning wrapper for a connected stream-socket fd.  Move-only RAII.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Reads exactly `n` bytes into `buffer` before `deadline`.  Timeout after
  /// partial data still reports Timeout (the stream is then desynchronized;
  /// callers must close).  EOF before any byte reports Closed; EOF
  /// mid-buffer reports Error.
  [[nodiscard]] IoResult readExact(void* buffer, std::size_t n,
                                   const Deadline& deadline);

  /// Blocks until at least one byte is readable (or EOF) before `deadline`.
  /// Distinguishes an idle wait from mid-message reads without consuming
  /// data.
  [[nodiscard]] IoResult waitReadable(const Deadline& deadline);

  /// Blocks until the send buffer has room before `deadline`.  The resume
  /// signal after a WouldBlock from writeSome() when no event loop is
  /// driving the fd.
  [[nodiscard]] IoResult waitWritable(const Deadline& deadline);

  /// Writes all `n` bytes before `deadline`.  Sends with SIGPIPE suppressed;
  /// a vanished peer reports Closed, never kills the process.
  [[nodiscard]] IoResult writeAll(const void* buffer, std::size_t n,
                                  const Deadline& deadline);

  /// Switches the fd in or out of O_NONBLOCK mode.  The event-loop server
  /// runs every connection nonblocking; blocking clients leave this off.
  [[nodiscard]] IoResult setNonBlocking(bool enabled);

  /// Single nonblocking read attempt: at most one recv(2).  Ok carries the
  /// byte count (> 0); WouldBlock means no data is ready; Closed is orderly
  /// EOF.  Never polls — the caller's event loop decides when to retry.
  [[nodiscard]] IoChunk readSome(void* buffer, std::size_t n);

  /// Nonblocking write attempt: sends as much of `buffer` as the kernel
  /// accepts right now.  A full send buffer reports WouldBlock with
  /// `bytes` already transferred — short writes are resumable, the caller
  /// continues from `buffer + bytes` once the fd is writable again.
  [[nodiscard]] IoChunk writeSome(const void* buffer, std::size_t n);

  /// Scatter-gather variant of writeSome: one sendmsg(2) attempt over
  /// `iovcnt` buffers, SIGPIPE suppressed.  Ok reports the bytes the kernel
  /// accepted (possibly fewer than queued — resume from the reported
  /// offset); WouldBlock means nothing was accepted this attempt.
  [[nodiscard]] IoChunk writevSome(const struct iovec* iov, int iovcnt);

 private:
  int fd_ = -1;
};

/// Outcome of a connect attempt.
struct ConnectResult {
  Socket socket;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return socket.valid(); }
};

/// Connects to a Unix-domain stream socket at `path`.
[[nodiscard]] ConnectResult connectUnix(const std::string& path,
                                        const Deadline& deadline);

/// Connects to TCP `host:port` (numeric host, e.g. "127.0.0.1" — the
/// service is loopback-only by design, so no name resolution).
[[nodiscard]] ConnectResult connectTcp(const std::string& host,
                                       std::uint16_t port,
                                       const Deadline& deadline);

/// Listening socket (Unix-domain or TCP loopback).
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;

  /// Binds and listens on a Unix-domain socket, replacing any stale file at
  /// `path` (the file is unlinked again on close).
  [[nodiscard]] static Listener listenUnix(const std::string& path,
                                           std::string* error);
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; see boundPort).
  [[nodiscard]] static Listener listenTcp(std::uint16_t port,
                                          std::string* error);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Actual bound TCP port (resolves port 0); 0 for Unix listeners.
  [[nodiscard]] std::uint16_t boundPort() const { return port_; }

  /// Accepts one connection before `deadline`.  On Timeout the caller can
  /// re-check its stop flag and call accept again.
  struct AcceptResult {
    Socket socket;
    IoStatus status = IoStatus::Ok;
    std::string message;
  };
  [[nodiscard]] AcceptResult accept(const Deadline& deadline);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unixPath_;  // unlinked on close
};

}  // namespace tprm::net
