#include "taskmodel/spec_io.h"

#include <cmath>
#include <sstream>

namespace tprm::task {

JsonValue toJsonValue(const TunableJobSpec& spec) {
  JsonValue::Array chains;
  for (const auto& chain : spec.chains) {
    JsonValue::Array tasks;
    for (const auto& t : chain.tasks) {
      JsonValue::Object task;
      task["name"] = t.name;
      task["processors"] = t.request.processors;
      task["duration"] = unitsFromTicks(t.request.duration);
      if (t.relativeDeadline < kTimeInfinity) {
        task["deadline"] = unitsFromTicks(t.relativeDeadline);
      }
      if (t.quality != 1.0) task["quality"] = t.quality;
      if (t.malleable) task["maxConcurrency"] = t.malleable->maxConcurrency;
      tasks.emplace_back(std::move(task));
    }
    JsonValue::Object chainObject;
    chainObject["name"] = chain.name;
    if (!chain.bindings.empty()) {
      JsonValue::Object bindings;
      for (const auto& [param, value] : chain.bindings) {
        bindings[param] = value;
      }
      chainObject["bindings"] = std::move(bindings);
    }
    chainObject["tasks"] = std::move(tasks);
    chains.emplace_back(std::move(chainObject));
  }
  JsonValue::Object root;
  root["name"] = spec.name;
  if (spec.qualityComposition == QualityComposition::Minimum) {
    root["qualityComposition"] = "minimum";
  } else {
    root["qualityComposition"] = "multiplicative";
  }
  root["chains"] = std::move(chains);
  return JsonValue(std::move(root));
}

std::string toJson(const TunableJobSpec& spec) {
  return toJsonValue(spec).dump();
}

namespace {

/// Error accumulator for descriptive parse failures.
class SpecReader {
 public:
  SpecParseResult read(const std::string& text) {
    const auto parsed = parseJson(text);
    if (!parsed.ok()) {
      return fail("JSON error at byte " + std::to_string(parsed.errorOffset) +
                  ": " + parsed.error);
    }
    return readValue(*parsed.value);
  }

  SpecParseResult readValue(const JsonValue& root) {
    if (!root.isObject()) return fail("top level must be an object");

    TunableJobSpec spec;
    if (const auto* name = root.find("name")) {
      if (!name->isString()) return fail("'name' must be a string");
      spec.name = name->asString();
    }
    if (const auto* comp = root.find("qualityComposition")) {
      if (!comp->isString()) {
        return fail("'qualityComposition' must be a string");
      }
      const auto& value = comp->asString();
      if (value == "minimum") {
        spec.qualityComposition = QualityComposition::Minimum;
      } else if (value == "multiplicative") {
        spec.qualityComposition = QualityComposition::Multiplicative;
      } else {
        return fail("unknown qualityComposition '" + value + "'");
      }
    }
    const auto* chains = root.find("chains");
    if (chains == nullptr || !chains->isArray()) {
      return fail("'chains' must be an array");
    }
    for (std::size_t c = 0; c < chains->asArray().size(); ++c) {
      auto chain = readChain(chains->asArray()[c], c);
      if (!chain) return fail(error_);
      spec.chains.push_back(std::move(*chain));
    }

    const auto errors = validate(spec);
    if (!errors.empty()) return fail("invalid spec: " + errors.front());
    SpecParseResult result;
    result.spec = std::move(spec);
    return result;
  }

 private:
  SpecParseResult fail(const std::string& what) {
    SpecParseResult result;
    result.error = what;
    return result;
  }

  std::optional<Chain> readChain(const JsonValue& value, std::size_t index) {
    std::ostringstream where;
    where << "chains[" << index << "]";
    if (!value.isObject()) {
      error_ = where.str() + " must be an object";
      return std::nullopt;
    }
    Chain chain;
    if (const auto* name = value.find("name")) {
      if (!name->isString()) {
        error_ = where.str() + ".name must be a string";
        return std::nullopt;
      }
      chain.name = name->asString();
    }
    if (const auto* bindings = value.find("bindings")) {
      if (!bindings->isObject()) {
        error_ = where.str() + ".bindings must be an object";
        return std::nullopt;
      }
      for (const auto& [param, bound] : bindings->asObject()) {
        if (!bound.isNumber() ||
            bound.asNumber() != std::floor(bound.asNumber())) {
          error_ = where.str() + ".bindings." + param +
                   " must be an integer";
          return std::nullopt;
        }
        chain.bindings[param] = static_cast<std::int64_t>(bound.asNumber());
      }
    }
    const auto* tasks = value.find("tasks");
    if (tasks == nullptr || !tasks->isArray()) {
      error_ = where.str() + ".tasks must be an array";
      return std::nullopt;
    }
    for (std::size_t k = 0; k < tasks->asArray().size(); ++k) {
      auto task = readTask(tasks->asArray()[k], where.str(), k);
      if (!task) return std::nullopt;
      chain.tasks.push_back(std::move(*task));
    }
    return chain;
  }

  std::optional<TaskSpec> readTask(const JsonValue& value,
                                   const std::string& chainWhere,
                                   std::size_t index) {
    std::ostringstream where;
    where << chainWhere << ".tasks[" << index << "]";
    if (!value.isObject()) {
      error_ = where.str() + " must be an object";
      return std::nullopt;
    }
    TaskSpec task;
    if (const auto* name = value.find("name")) {
      if (!name->isString()) {
        error_ = where.str() + ".name must be a string";
        return std::nullopt;
      }
      task.name = name->asString();
    }
    const auto* processors = value.find("processors");
    if (processors == nullptr || !processors->isNumber()) {
      error_ = where.str() + ".processors must be a number";
      return std::nullopt;
    }
    task.request.processors = static_cast<int>(processors->asNumber());
    const auto* duration = value.find("duration");
    if (duration == nullptr || !duration->isNumber()) {
      error_ = where.str() + ".duration must be a number";
      return std::nullopt;
    }
    if (duration->asNumber() <= 0.0) {
      error_ = where.str() + ".duration must be positive";
      return std::nullopt;
    }
    task.request.duration = ticksFromUnits(duration->asNumber());
    if (const auto* deadline = value.find("deadline")) {
      if (!deadline->isNumber()) {
        error_ = where.str() + ".deadline must be a number";
        return std::nullopt;
      }
      task.relativeDeadline = ticksFromUnits(deadline->asNumber());
    }
    if (const auto* quality = value.find("quality")) {
      if (!quality->isNumber()) {
        error_ = where.str() + ".quality must be a number";
        return std::nullopt;
      }
      task.quality = quality->asNumber();
    }
    if (const auto* maxConc = value.find("maxConcurrency")) {
      if (!maxConc->isNumber()) {
        error_ = where.str() + ".maxConcurrency must be a number";
        return std::nullopt;
      }
      task.malleable = MalleableSpec{task.request.area(),
                                     static_cast<int>(maxConc->asNumber())};
    }
    return task;
  }

  std::string error_;
};

}  // namespace

SpecParseResult jobSpecFromJson(const std::string& text) {
  return SpecReader().read(text);
}

SpecParseResult jobSpecFromJsonValue(const JsonValue& root) {
  return SpecReader().readValue(root);
}

}  // namespace tprm::task
