// Task-level model: resource requests, malleability, and per-task QoS
// attributes.
//
// The paper's model (Sections 3-5): an application is a chain (more generally
// a dag) of tasks; each task requests the non-preemptive allocation of a
// specific number of processors for a fixed amount of time (footnote 1), has
// an absolute deadline by which it and all its predecessors must finish, and
// produces output of some quality.  Section 5.4 additionally considers
// *malleable* tasks, which can run on any number of processors up to their
// degree of concurrency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/time.h"

namespace tprm::task {

/// A rigid processor-time request: `processors` processors held for
/// `duration` ticks (the paper's "resource-request ... processor-time tuple").
struct ResourceRequest {
  int processors = 0;
  Time duration = 0;

  /// Processor-ticks consumed (the task "area" in the 2D plane).
  [[nodiscard]] constexpr std::int64_t area() const {
    return static_cast<std::int64_t>(processors) * duration;
  }
  constexpr bool operator==(const ResourceRequest&) const = default;
};

/// Malleability: the task exposes `work` processor-ticks of logical work that
/// may be spread over 1..maxConcurrency processors with linear speedup
/// (Calypso's programming model: the programmer specifies logical concurrency
/// only; the runtime maps it onto available processors).
struct MalleableSpec {
  /// Total work in processor-ticks.
  std::int64_t work = 0;
  /// Degree of concurrency: the most processors the task can exploit.
  int maxConcurrency = 1;

  /// Running time on `processors` processors (linear speedup, rounded up so
  /// the reservation always covers the work).  `processors` must be in
  /// [1, maxConcurrency].
  [[nodiscard]] Time durationOn(int processors) const;

  /// The rigid request equivalent to running on `processors` processors.
  [[nodiscard]] ResourceRequest requestOn(int processors) const;

  constexpr bool operator==(const MalleableSpec&) const = default;
};

/// One task of an execution path.
///
/// `relativeDeadline` is measured from the *job release time*: the paper sets
/// task deadlines as offsets from the release r (Section 5.3, d_i = r + ...),
/// and defines the deadline as "the time by which the task and all its
/// predecessors must finish".  The absolute deadline of an instance is
/// release + relativeDeadline.
struct TaskSpec {
  std::string name;
  /// Rigid shape.  For malleable tasks this is the shape at maximum
  /// concurrency (and `malleable` is set).
  ResourceRequest request;
  /// Present iff the task is malleable (Section 5.4 model).
  std::optional<MalleableSpec> malleable;
  /// Deadline offset from job release; kTimeInfinity = unconstrained.
  Time relativeDeadline = kTimeInfinity;
  /// Output quality contributed by this task's configuration, in [0, 1].
  double quality = 1.0;

  /// Convenience: a rigid task.
  static TaskSpec rigid(std::string name, int processors, Time duration,
                        Time relativeDeadline, double quality = 1.0);

  /// Convenience: a malleable task whose work equals processors*duration and
  /// whose degree of concurrency is `maxConcurrency`.
  static TaskSpec malleableTask(std::string name, int processors,
                                Time duration, int maxConcurrency,
                                Time relativeDeadline, double quality = 1.0);

  bool operator==(const TaskSpec&) const = default;
};

}  // namespace tprm::task
