#include "taskmodel/dag.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/check.h"

namespace tprm::task {

std::int64_t DagSpec::totalArea() const {
  std::int64_t area = 0;
  for (const auto& t : tasks) area += t.spec.request.area();
  return area;
}

std::vector<std::size_t> DagSpec::topologicalOrder() const {
  const std::size_t n = tasks.size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> successors(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t p : tasks[i].predecessors) {
      TPRM_CHECK(p < n, "predecessor index out of range");
      successors[p].push_back(i);
      ++indegree[i];
    }
  }
  // Min-heap on index for deterministic order.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const std::size_t s : successors[v]) {
      if (--indegree[s] == 0) ready.push(s);
    }
  }
  TPRM_CHECK(order.size() == n, "dag contains a cycle");
  return order;
}

Time DagSpec::criticalPathLength() const {
  const auto order = topologicalOrder();
  std::vector<Time> finish(tasks.size(), 0);
  Time longest = 0;
  for (const std::size_t v : order) {
    Time start = 0;
    for (const std::size_t p : tasks[v].predecessors) {
      start = std::max(start, finish[p]);
    }
    finish[v] = start + tasks[v].spec.request.duration;
    longest = std::max(longest, finish[v]);
  }
  return longest;
}

std::vector<std::string> validateDag(const TunableDagJobSpec& spec) {
  std::vector<std::string> errors;
  auto fail = [&errors](const std::string& what) { errors.push_back(what); };

  if (spec.alternatives.empty()) {
    fail("dag job '" + spec.name + "' has no alternatives");
    return errors;
  }
  for (std::size_t a = 0; a < spec.alternatives.size(); ++a) {
    const DagSpec& dag = spec.alternatives[a];
    std::ostringstream where;
    where << "dag job '" << spec.name << "' alternative " << a << " ('"
          << dag.name << "')";
    if (dag.tasks.empty()) {
      fail(where.str() + " is empty");
      continue;
    }
    const std::size_t n = dag.tasks.size();
    bool structureOk = true;
    for (std::size_t i = 0; i < n; ++i) {
      const DagTask& t = dag.tasks[i];
      std::ostringstream at;
      at << where.str() << " task " << i << " ('" << t.spec.name << "')";
      if (t.spec.request.processors <= 0) fail(at.str() + ": processors <= 0");
      if (t.spec.request.duration <= 0) fail(at.str() + ": duration <= 0");
      if (t.spec.quality < 0.0 || t.spec.quality > 1.0) {
        fail(at.str() + ": quality outside [0, 1]");
      }
      for (const std::size_t p : t.predecessors) {
        if (p >= n) {
          fail(at.str() + ": predecessor index out of range");
          structureOk = false;
        } else if (p == i) {
          fail(at.str() + ": task depends on itself");
          structureOk = false;
        }
      }
    }
    if (!structureOk) continue;

    // Cycle check (non-aborting variant of topologicalOrder).
    {
      std::vector<std::size_t> indegree(n, 0);
      std::vector<std::vector<std::size_t>> successors(n);
      for (std::size_t i = 0; i < n; ++i) {
        for (const std::size_t p : dag.tasks[i].predecessors) {
          successors[p].push_back(i);
          ++indegree[i];
        }
      }
      std::queue<std::size_t> ready;
      for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0) ready.push(i);
      }
      std::size_t seen = 0;
      while (!ready.empty()) {
        const std::size_t v = ready.front();
        ready.pop();
        ++seen;
        for (const std::size_t s : successors[v]) {
          if (--indegree[s] == 0) ready.push(s);
        }
      }
      if (seen != n) {
        fail(where.str() + " contains a cycle");
        continue;
      }
    }

    // Deadline feasibility: earliest possible finish of each task (critical
    // path prefix) must meet its deadline.
    const auto order = dag.topologicalOrder();
    std::vector<Time> earliestFinish(n, 0);
    for (const std::size_t v : order) {
      Time start = 0;
      for (const std::size_t p : dag.tasks[v].predecessors) {
        start = std::max(start, earliestFinish[p]);
      }
      earliestFinish[v] = start + dag.tasks[v].spec.request.duration;
      const Time deadline = dag.tasks[v].spec.relativeDeadline;
      if (deadline < kTimeInfinity && earliestFinish[v] > deadline) {
        std::ostringstream at;
        at << where.str() << " task " << v << " ('" << dag.tasks[v].spec.name
           << "'): infeasible even on an idle machine (earliest finish "
           << formatTime(earliestFinish[v]) << " exceeds deadline "
           << formatTime(deadline) << ")";
        fail(at.str());
      }
    }
  }
  return errors;
}

TunableDagJobSpec dagFromChains(const TunableJobSpec& chains) {
  TunableDagJobSpec dag;
  dag.name = chains.name;
  dag.qualityComposition = chains.qualityComposition;
  for (const auto& chain : chains.chains) {
    DagSpec alt;
    alt.name = chain.name;
    for (std::size_t k = 0; k < chain.tasks.size(); ++k) {
      DagTask t;
      t.spec = chain.tasks[k];
      if (k > 0) t.predecessors = {k - 1};
      alt.tasks.push_back(std::move(t));
    }
    dag.alternatives.push_back(std::move(alt));
  }
  return dag;
}

}  // namespace tprm::task
