// JSON serialization of tunable job specs.
//
// Lets workloads live in files: benchmark harnesses and deployments can load
// custom job definitions instead of compiling them in, and the QoS agent's
// "communicate all the possible application execution paths" message
// (Section 3.1) has a concrete wire format.
//
// Schema (durations and deadlines in paper time units, doubles):
//
//   {
//     "name": "fig4-tunable",
//     "qualityComposition": "multiplicative" | "minimum",   // optional
//     "chains": [
//       {
//         "name": "shape1",
//         "bindings": {"g": 16},          // optional; control parameters
//         "tasks": [
//           {
//             "name": "wide",
//             "processors": 16,
//             "duration": 25.0,
//             "deadline": 200.0,          // optional; absent = none
//             "quality": 1.0,             // optional; default 1.0
//             "maxConcurrency": 16        // optional; present = malleable
//           }, ...
//         ]
//       }, ...
//     ]
//   }
#pragma once

#include <optional>
#include <string>

#include "common/json.h"
#include "taskmodel/chain.h"

namespace tprm::task {

/// Serialises a spec to the schema above (stable, pretty-printed).
[[nodiscard]] std::string toJson(const TunableJobSpec& spec);

/// Serialises a spec to a JsonValue (for embedding in larger documents, e.g.
/// negotiation-service frames).
[[nodiscard]] JsonValue toJsonValue(const TunableJobSpec& spec);

/// Deserialisation outcome: a spec or a descriptive error.
struct SpecParseResult {
  std::optional<TunableJobSpec> spec;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return spec.has_value(); }
};

/// Parses a spec from JSON text.  Malformed documents, missing required
/// fields, wrong types, and structurally invalid specs (per task::validate)
/// are reported as errors, never aborts.
[[nodiscard]] SpecParseResult jobSpecFromJson(const std::string& text);

/// Same, from an already parsed JSON value (the wire protocol embeds specs
/// inside request frames).
[[nodiscard]] SpecParseResult jobSpecFromJsonValue(const JsonValue& root);

}  // namespace tprm::task
