// Chains (execution paths) and tunable jobs (OR-sets of chains).
//
// Section 5.1: "a job is now represented by an OR task graph instead of a
// chain ... For uniformity, we assume that all paths through an OR graph have
// been enumerated, so a tunable application is represented by multiple task
// chains."  The tunable DSL (src/tunable) performs that enumeration; the
// scheduler consumes this enumerated form.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "taskmodel/task.h"

namespace tprm::task {

/// How per-task qualities compose into a path quality.
enum class QualityComposition {
  /// Product of task qualities (default; a bad stage degrades the output).
  Multiplicative,
  /// Minimum task quality (weakest-link model).
  Minimum,
};

/// One execution path: a sequence of tasks executed back-to-back, each with a
/// cumulative deadline.
struct Chain {
  std::string name;
  std::vector<TaskSpec> tasks;
  /// Control-parameter assignment realising this path (Section 3.2).  The
  /// scheduler ignores it; it rides along so a remote QoS agent receives the
  /// bindings of the granted path over the wire.  Empty for plain chains.
  std::map<std::string, std::int64_t> bindings;

  /// Total processor-ticks over all tasks.
  [[nodiscard]] std::int64_t totalArea() const;

  /// Sum of task durations (the path's minimum end-to-end running time,
  /// assuming rigid shapes and no queueing).
  [[nodiscard]] Time criticalPathLength() const;

  /// Largest single-task processor request.
  [[nodiscard]] int maxProcessors() const;

  /// Path quality under the given composition rule.
  [[nodiscard]] double quality(
      QualityComposition comp = QualityComposition::Multiplicative) const;

  /// Cumulative processor-tick prefix areas: prefix[k] = area of tasks
  /// [0, k].  Used by the heuristic's "fewer total resources for some prefix"
  /// tie-break (Section 5.2).
  [[nodiscard]] std::vector<std::int64_t> prefixAreas() const;

  bool operator==(const Chain&) const = default;
};

/// A tunable job: one of `chains` will be selected and executed.  Non-tunable
/// jobs are the single-chain special case.
struct TunableJobSpec {
  std::string name;
  std::vector<Chain> chains;
  QualityComposition qualityComposition = QualityComposition::Multiplicative;

  [[nodiscard]] bool tunable() const { return chains.size() > 1; }

  bool operator==(const TunableJobSpec&) const = default;
};

/// An arrived instance of a job spec (release time bound).
struct JobInstance {
  std::uint64_t id = 0;
  Time release = 0;
  TunableJobSpec spec;

  /// Absolute deadline of task `taskIndex` on chain `chainIndex`.
  [[nodiscard]] Time absoluteDeadline(std::size_t chainIndex,
                                      std::size_t taskIndex) const;
};

/// Structural validation failure descriptions; empty means the spec is valid.
///
/// Checks: at least one chain; every chain non-empty; positive processor
/// counts and durations; qualities in [0, 1]; malleable specs consistent
/// (work > 0, maxConcurrency >= shape processors); per-chain relative
/// deadlines non-decreasing (a task's deadline covers its predecessors, so a
/// decreasing deadline would be vacuous); every chain feasible in isolation
/// (critical path fits within the last deadline).
[[nodiscard]] std::vector<std::string> validate(const TunableJobSpec& spec);

}  // namespace tprm::task
