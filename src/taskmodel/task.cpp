#include "taskmodel/task.h"

#include "common/check.h"

namespace tprm::task {

Time MalleableSpec::durationOn(int processors) const {
  TPRM_CHECK(processors >= 1 && processors <= maxConcurrency,
             "processor count outside malleable range");
  // Ceiling division: the reservation must cover all the work.
  return (work + processors - 1) / processors;
}

ResourceRequest MalleableSpec::requestOn(int processors) const {
  return ResourceRequest{processors, durationOn(processors)};
}

TaskSpec TaskSpec::rigid(std::string name, int processors, Time duration,
                         Time relativeDeadline, double quality) {
  TPRM_CHECK(processors > 0, "task needs at least one processor");
  TPRM_CHECK(duration > 0, "task duration must be positive");
  TaskSpec spec;
  spec.name = std::move(name);
  spec.request = ResourceRequest{processors, duration};
  spec.relativeDeadline = relativeDeadline;
  spec.quality = quality;
  return spec;
}

TaskSpec TaskSpec::malleableTask(std::string name, int processors,
                                 Time duration, int maxConcurrency,
                                 Time relativeDeadline, double quality) {
  TaskSpec spec =
      rigid(std::move(name), processors, duration, relativeDeadline, quality);
  TPRM_CHECK(maxConcurrency >= 1, "degree of concurrency must be positive");
  spec.malleable = MalleableSpec{spec.request.area(), maxConcurrency};
  return spec;
}

}  // namespace tprm::task
