#include "taskmodel/chain.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace tprm::task {

std::int64_t Chain::totalArea() const {
  std::int64_t area = 0;
  for (const auto& t : tasks) area += t.request.area();
  return area;
}

Time Chain::criticalPathLength() const {
  Time length = 0;
  for (const auto& t : tasks) length += t.request.duration;
  return length;
}

int Chain::maxProcessors() const {
  int maxProcs = 0;
  for (const auto& t : tasks) maxProcs = std::max(maxProcs, t.request.processors);
  return maxProcs;
}

double Chain::quality(QualityComposition comp) const {
  if (tasks.empty()) return 0.0;
  switch (comp) {
    case QualityComposition::Multiplicative: {
      double q = 1.0;
      for (const auto& t : tasks) q *= t.quality;
      return q;
    }
    case QualityComposition::Minimum: {
      double q = 1.0;
      for (const auto& t : tasks) q = std::min(q, t.quality);
      return q;
    }
  }
  return 0.0;
}

std::vector<std::int64_t> Chain::prefixAreas() const {
  std::vector<std::int64_t> prefix;
  prefix.reserve(tasks.size());
  std::int64_t running = 0;
  for (const auto& t : tasks) {
    running += t.request.area();
    prefix.push_back(running);
  }
  return prefix;
}

Time JobInstance::absoluteDeadline(std::size_t chainIndex,
                                   std::size_t taskIndex) const {
  TPRM_CHECK(chainIndex < spec.chains.size(), "chain index out of range");
  const Chain& chain = spec.chains[chainIndex];
  TPRM_CHECK(taskIndex < chain.tasks.size(), "task index out of range");
  const Time rel = chain.tasks[taskIndex].relativeDeadline;
  if (rel >= kTimeInfinity) return kTimeInfinity;
  return release + rel;
}

std::vector<std::string> validate(const TunableJobSpec& spec) {
  std::vector<std::string> errors;
  auto fail = [&errors](const std::string& what) { errors.push_back(what); };

  if (spec.chains.empty()) {
    fail("job '" + spec.name + "' has no chains");
    return errors;
  }
  for (std::size_t c = 0; c < spec.chains.size(); ++c) {
    const Chain& chain = spec.chains[c];
    std::ostringstream where;
    where << "job '" << spec.name << "' chain " << c << " ('" << chain.name
          << "')";
    if (chain.tasks.empty()) {
      fail(where.str() + " is empty");
      continue;
    }
    Time previousDeadline = 0;
    Time earliestFinish = 0;
    for (std::size_t k = 0; k < chain.tasks.size(); ++k) {
      const TaskSpec& t = chain.tasks[k];
      std::ostringstream at;
      at << where.str() << " task " << k << " ('" << t.name << "')";
      if (t.request.processors <= 0) fail(at.str() + ": processors <= 0");
      if (t.request.duration <= 0) fail(at.str() + ": duration <= 0");
      if (t.quality < 0.0 || t.quality > 1.0) {
        fail(at.str() + ": quality outside [0, 1]");
      }
      if (t.malleable) {
        if (t.malleable->work <= 0) fail(at.str() + ": malleable work <= 0");
        if (t.malleable->maxConcurrency < t.request.processors) {
          fail(at.str() +
               ": degree of concurrency below the rigid shape's processors");
        }
      }
      if (t.relativeDeadline < previousDeadline) {
        fail(at.str() +
             ": relative deadline decreases along the chain (a deadline "
             "covers all predecessors, so it must be non-decreasing)");
      }
      previousDeadline = t.relativeDeadline;
      earliestFinish += t.request.duration;
      if (t.relativeDeadline < kTimeInfinity &&
          earliestFinish > t.relativeDeadline) {
        fail(at.str() + ": infeasible even on an idle machine (critical path " +
             formatTime(earliestFinish) + " exceeds deadline " +
             formatTime(t.relativeDeadline) + ")");
      }
    }
  }
  return errors;
}

}  // namespace tprm::task
