// DAG-structured jobs: the general form of the paper's application model.
//
// Section 3.1 describes the QoS agent's view of an application as "an
// execution path (a chain, or more generally, a dag) comprising several
// tasks"; the evaluation restricts itself to chains (Section 5.1).  This
// module implements the general AND-dag form: tasks with explicit
// predecessor sets, where a task may start once *all* its predecessors have
// finished.  Tunability composes the same way as for chains: a tunable dag
// job is an OR-set of alternative dags (Gillies' AND/OR graphs, cited as
// [8] in the paper, restricted to enumerated OR alternatives).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "taskmodel/chain.h"
#include "taskmodel/task.h"

namespace tprm::task {

/// A task within a dag: its spec plus the indices of the tasks that must
/// finish before it starts (indices into DagSpec::tasks, each < own index is
/// NOT required, but the graph must be acyclic).
struct DagTask {
  TaskSpec spec;
  std::vector<std::size_t> predecessors;

  bool operator==(const DagTask&) const = default;
};

/// One alternative execution dag.
struct DagSpec {
  std::string name;
  std::vector<DagTask> tasks;

  /// Total processor-ticks over all tasks.
  [[nodiscard]] std::int64_t totalArea() const;

  /// Length of the longest path through the dag (sum of durations), i.e.
  /// the minimum possible end-to-end running time on an idle, wide-enough
  /// machine.  Requires a valid (acyclic) dag.
  [[nodiscard]] Time criticalPathLength() const;

  /// A topological order of task indices; aborts if the graph has a cycle
  /// (use validateDag first for a soft check).  Kahn's algorithm; ties are
  /// broken by index so the order is deterministic.
  [[nodiscard]] std::vector<std::size_t> topologicalOrder() const;

  bool operator==(const DagSpec&) const = default;
};

/// A tunable dag job: one of `alternatives` will be selected and executed.
struct TunableDagJobSpec {
  std::string name;
  std::vector<DagSpec> alternatives;
  QualityComposition qualityComposition = QualityComposition::Multiplicative;

  [[nodiscard]] bool tunable() const { return alternatives.size() > 1; }

  bool operator==(const TunableDagJobSpec&) const = default;
};

/// An arrived instance of a dag job.
struct DagJobInstance {
  std::uint64_t id = 0;
  Time release = 0;
  TunableDagJobSpec spec;
};

/// Structural validation; empty result means valid.
/// Checks: at least one alternative; alternatives non-empty; predecessor
/// indices in range, no self-loops, graph acyclic; task shapes positive;
/// qualities in [0, 1]; per-path cumulative deadline feasibility along every
/// dag path (critical-path prefix must fit within each task's deadline).
[[nodiscard]] std::vector<std::string> validateDag(
    const TunableDagJobSpec& spec);

/// Converts a chain-structured job into the dag form (task k depends on
/// task k-1).  Useful for running chain workloads through the dag
/// arbitrator and cross-checking the two schedulers.
[[nodiscard]] TunableDagJobSpec dagFromChains(const TunableJobSpec& chains);

}  // namespace tprm::task
