#include "qos/sharded.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace tprm::qos {

ShardedArbitrator::ShardedArbitrator(int processors, ShardedOptions options)
    : options_(options) {
  TPRM_CHECK(options.shards >= 1, "need at least one shard");
  TPRM_CHECK(processors >= options.shards,
             "need at least one processor per shard");
  TPRM_CHECK(options.spillHorizon > 0, "spill horizon must be positive");
  const int base = processors / options.shards;
  const int extra = processors % options.shards;
  shards_.reserve(static_cast<std::size_t>(options.shards));
  for (int k = 0; k < options.shards; ++k) {
    shards_.push_back(
        std::make_unique<Shard>(base + (k < extra ? 1 : 0), options.greedy));
  }
}

Time ShardedArbitrator::advanceClock(Time t) {
  Time seen = clock_.load(std::memory_order_relaxed);
  while (seen < t &&
         !clock_.compare_exchange_weak(seen, t, std::memory_order_acq_rel)) {
  }
  return std::max(seen, t);
}

void ShardedArbitrator::bindJob(std::uint64_t globalId, int shard,
                                std::uint64_t localId) {
  shards_[static_cast<std::size_t>(shard)]->toGlobal[localId] = globalId;
  std::lock_guard<std::mutex> lock(mapMutex_);
  toLocal_[globalId] = {shard, localId};
}

std::vector<std::unique_lock<std::mutex>> ShardedArbitrator::lockAll() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  return locks;
}

int ShardedArbitrator::processors() const {
  int total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->arb.processors();
  }
  return total;
}

std::vector<int> ShardedArbitrator::shardProcessors() const {
  std::vector<int> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    sizes.push_back(shard->arb.processors());
  }
  return sizes;
}

void ShardedArbitrator::appendGlobalMoves(const Shard& shard,
                                          std::vector<QualityMove> local,
                                          std::vector<QualityMove>& out) {
  for (auto& move : local) {
    move.jobId = shard.toGlobal.at(move.jobId);
    out.push_back(std::move(move));
  }
}

sched::AdmissionDecision ShardedArbitrator::submit(
    std::uint64_t jobId, const task::TunableJobSpec& spec, Time release,
    Time* effectiveRelease, std::vector<QualityMove>* moves) {
  const Time r = advanceClock(release);
  const int home = homeShard(jobId);
  sched::AdmissionDecision decision;
  {
    auto& shard = *shards_[static_cast<std::size_t>(home)];
    std::lock_guard<std::mutex> lock(shard.mu);
    // The shard's clock trails the global one (it only sees its own
    // traffic); clamping keeps the per-shard non-decreasing-release invariant
    // without forcing global serialization.
    const Time local = std::max(r, shard.arb.clock());
    if (effectiveRelease != nullptr) *effectiveRelease = local;
    std::vector<QualityMove> localMoves;
    decision = shard.arb.submit(
        spec, local, moves != nullptr ? &localMoves : nullptr);
    if (moves != nullptr) appendGlobalMoves(shard, std::move(localMoves), *moves);
    if (decision.admitted) {
      bindJob(jobId, home, shard.arb.lastJobId().value());
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }

  if (options_.spill && shards_.size() > 1) {
    if (shardedMetrics_ != nullptr) shardedMetrics_->spillAttempts->add();
    // Offer the job to the shard with the most free area near its release.
    int best = -1;
    std::int64_t bestFree = -1;
    for (int k = 0; k < shardCount(); ++k) {
      if (k == home) continue;
      auto& shard = *shards_[static_cast<std::size_t>(k)];
      std::lock_guard<std::mutex> lock(shard.mu);
      const Time from = std::max(r, shard.arb.clock());
      const TimeInterval window{from, from + options_.spillHorizon};
      const std::int64_t freeTicks =
          static_cast<std::int64_t>(shard.arb.processors()) * window.length() -
          shard.arb.profile().busyProcessorTicks(window);
      if (freeTicks > bestFree) {
        bestFree = freeTicks;
        best = k;
      }
    }
    if (best >= 0) {
      auto& shard = *shards_[static_cast<std::size_t>(best)];
      std::lock_guard<std::mutex> lock(shard.mu);
      const Time local = std::max(r, shard.arb.clock());
      std::vector<QualityMove> localMoves;
      const auto spilled = shard.arb.submit(
          spec, local, moves != nullptr ? &localMoves : nullptr);
      if (moves != nullptr) {
        appendGlobalMoves(shard, std::move(localMoves), *moves);
      }
      if (spilled.admitted) {
        if (effectiveRelease != nullptr) *effectiveRelease = local;
        bindJob(jobId, best, shard.arb.lastJobId().value());
        admitted_.fetch_add(1, std::memory_order_relaxed);
        spills_.fetch_add(1, std::memory_order_relaxed);
        if (shardedMetrics_ != nullptr) shardedMetrics_->spillAdmitted->add();
        return spilled;
      }
    }
  }

  rejected_.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

std::int64_t ShardedArbitrator::cancel(std::uint64_t jobId,
                                       std::vector<QualityMove>* moves) {
  if (shards_.size() == 1) {
    // Global and local ids coincide; forwarding unknown ids too preserves
    // the unsharded miss accounting exactly.
    auto& shard = *shards_[0];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<QualityMove> localMoves;
    const auto freed =
        shard.arb.cancel(jobId, moves != nullptr ? &localMoves : nullptr);
    if (moves != nullptr) appendGlobalMoves(shard, std::move(localMoves), *moves);
    shard.toGlobal.erase(jobId);
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    toLocal_.erase(jobId);
    return freed;
  }

  std::optional<std::pair<int, std::uint64_t>> location;
  {
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    const auto it = toLocal_.find(jobId);
    if (it != toLocal_.end()) location = it->second;
  }
  if (!location.has_value()) {
    // Unknown, rejected, or already finished: account the miss on the home
    // shard, like the unsharded arbitrator would.
    auto& shard = *shards_[static_cast<std::size_t>(homeShard(jobId))];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto* metrics = shard.arb.metrics();
    if (metrics != nullptr && metrics->cancelMisses != nullptr) {
      metrics->cancelMisses->add();
    }
    return 0;
  }
  auto& shard = *shards_[static_cast<std::size_t>(location->first)];
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<QualityMove> localMoves;
  const auto freed = shard.arb.cancel(
      location->second, moves != nullptr ? &localMoves : nullptr);
  if (moves != nullptr) appendGlobalMoves(shard, std::move(localMoves), *moves);
  shard.toGlobal.erase(location->second);
  std::lock_guard<std::mutex> mapLock(mapMutex_);
  toLocal_.erase(jobId);
  return freed;
}

RenegotiationReport ShardedArbitrator::resize(int processors, Time when) {
  TPRM_CHECK(processors >= shardCount(),
             "resize needs at least one processor per shard");
  const Time w = advanceClock(when);
  const auto locks = lockAll();

  RenegotiationReport report;
  report.processorsAfter = processors;
  const int base = processors / shardCount();
  const int extra = processors % shardCount();
  for (int k = 0; k < shardCount(); ++k) {
    auto& shard = *shards_[static_cast<std::size_t>(k)];
    report.processorsBefore += shard.arb.processors();
    const auto shardReport = shard.arb.resize(
        base + (k < extra ? 1 : 0), std::max(w, shard.arb.clock()));
    for (const auto localId : shardReport.kept) {
      report.kept.push_back(shard.toGlobal.at(localId));
    }
    for (const auto localId : shardReport.reconfigured) {
      report.reconfigured.push_back(shard.toGlobal.at(localId));
    }
    for (const auto localId : shardReport.dropped) {
      report.dropped.push_back(shard.toGlobal.at(localId));
    }
    // Live sets shrank (drops, retirements): prune dead id bindings so the
    // maps track live jobs only.
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    for (auto it = shard.toGlobal.begin(); it != shard.toGlobal.end();) {
      if (!shard.arb.live(it->first)) {
        toLocal_.erase(it->second);
        it = shard.toGlobal.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::sort(report.kept.begin(), report.kept.end());
  std::sort(report.reconfigured.begin(), report.reconfigured.end());
  std::sort(report.dropped.begin(), report.dropped.end());
  return report;
}

ShardRebalanceReport ShardedArbitrator::rebalance(Time when) {
  ShardRebalanceReport report;
  if (shardCount() < 2) return report;
  if (shardedMetrics_ != nullptr) shardedMetrics_->rebalanceChecks->add();
  const Time w = advanceClock(when);
  const auto locks = lockAll();

  // A shard's idle count is the capacity free from `when` on — processors
  // the donor can give up without touching any commitment.
  int donor = -1;
  int receiver = -1;
  std::vector<int> idle(static_cast<std::size_t>(shardCount()), 0);
  for (int k = 0; k < shardCount(); ++k) {
    const auto& arb = shards_[static_cast<std::size_t>(k)]->arb;
    const Time from = std::max(w, arb.clock());
    idle[static_cast<std::size_t>(k)] =
        arb.profile().minAvailable(TimeInterval{from, kTimeInfinity});
    if (donor < 0 || idle[static_cast<std::size_t>(k)] >
                         idle[static_cast<std::size_t>(donor)]) {
      donor = k;
    }
    if (receiver < 0 || idle[static_cast<std::size_t>(k)] <
                            idle[static_cast<std::size_t>(receiver)]) {
      receiver = k;
    }
  }
  report.maxIdle = idle[static_cast<std::size_t>(donor)];
  report.minIdle = idle[static_cast<std::size_t>(receiver)];
  const int gap = report.maxIdle - report.minIdle;
  if (donor == receiver || gap < options_.rebalanceThreshold) return report;

  auto& donorArb = shards_[static_cast<std::size_t>(donor)]->arb;
  auto& receiverArb = shards_[static_cast<std::size_t>(receiver)]->arb;
  const int move = std::min({gap / 2, report.maxIdle,
                             donorArb.processors() - 1});
  if (move <= 0) return report;

  const auto shrink = donorArb.resize(donorArb.processors() - move,
                                      std::max(w, donorArb.clock()));
  // The donor only gives up always-idle processors, so the shrink must keep
  // every reservation in place.
  TPRM_CHECK(shrink.dropped.empty(), "rebalance shrink dropped a commitment");
  (void)receiverArb.resize(receiverArb.processors() + move,
                           std::max(w, receiverArb.clock()));
  report.moved = true;
  report.fromShard = donor;
  report.toShard = receiver;
  report.processors = move;
  if (shardedMetrics_ != nullptr) {
    shardedMetrics_->rebalanceMoves->add();
    shardedMetrics_->rebalanceProcessorsMoved->add(
        static_cast<std::uint64_t>(move));
  }
  return report;
}

resource::VerificationReport ShardedArbitrator::verify() const {
  const auto locks = lockAll();
  for (const auto& shard : shards_) {
    auto report = shard->arb.verify();
    if (!report.ok) return report;
  }
  return resource::VerificationReport{};
}

void ShardedArbitrator::attachReshapePolicy(const ReshapePolicy* policy) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->arb.attachReshapePolicy(policy);
  }
}

void ShardedArbitrator::attachMetrics(
    std::vector<obs::NegotiationMetrics*> perShard,
    obs::ShardedMetrics* sharded) {
  TPRM_CHECK(perShard.empty() ||
                 perShard.size() == static_cast<std::size_t>(shardCount()),
             "per-shard metrics bundle count must match shard count");
  for (int k = 0; k < shardCount(); ++k) {
    auto& shard = *shards_[static_cast<std::size_t>(k)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.arb.attachMetrics(
        perShard.empty() ? nullptr : perShard[static_cast<std::size_t>(k)]);
  }
  shardedMetrics_ = sharded;
}

}  // namespace tprm::qos
