#include "qos/sharded.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/check.h"
#include "obs/metrics.h"

namespace tprm::qos {

ShardedArbitrator::ShardedArbitrator(int processors, ShardedOptions options)
    : options_(options) {
  TPRM_CHECK(options.shards >= 1, "need at least one shard");
  TPRM_CHECK(processors >= options.shards,
             "need at least one processor per shard");
  TPRM_CHECK(options.spillHorizon > 0, "spill horizon must be positive");
  const int base = processors / options.shards;
  const int extra = processors % options.shards;
  shards_.reserve(static_cast<std::size_t>(options.shards));
  for (int k = 0; k < options.shards; ++k) {
    shards_.push_back(
        std::make_unique<Shard>(base + (k < extra ? 1 : 0), options.greedy));
  }
}

Time ShardedArbitrator::advanceClock(Time t) {
  Time seen = clock_.load(std::memory_order_relaxed);
  while (seen < t &&
         !clock_.compare_exchange_weak(seen, t, std::memory_order_acq_rel)) {
  }
  return std::max(seen, t);
}

void ShardedArbitrator::bindJob(std::uint64_t globalId, int shard,
                                std::uint64_t localId) {
  shards_[static_cast<std::size_t>(shard)]->toGlobal[localId] = globalId;
  std::lock_guard<std::mutex> lock(mapMutex_);
  toLocal_[globalId] = {shard, localId};
}

std::vector<std::unique_lock<std::mutex>> ShardedArbitrator::lockAll() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  return locks;
}

int ShardedArbitrator::processors() const {
  int total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->arb.processors();
  }
  return total;
}

std::vector<int> ShardedArbitrator::shardProcessors() const {
  std::vector<int> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    sizes.push_back(shard->arb.processors());
  }
  return sizes;
}

void ShardedArbitrator::appendGlobalMoves(const Shard& shard,
                                          std::vector<QualityMove> local,
                                          std::vector<QualityMove>& out) {
  for (auto& move : local) {
    move.jobId = shard.toGlobal.at(move.jobId);
    out.push_back(std::move(move));
  }
}

sched::AdmissionDecision ShardedArbitrator::submit(
    std::uint64_t jobId, const task::TunableJobSpec& spec, Time release,
    Time* effectiveRelease, std::vector<QualityMove>* moves) {
  const Time r = advanceClock(release);
  const int home = homeShard(jobId);
  sched::AdmissionDecision decision;
  {
    auto& shard = *shards_[static_cast<std::size_t>(home)];
    std::lock_guard<std::mutex> lock(shard.mu);
    // The shard's clock trails the global one (it only sees its own
    // traffic); clamping keeps the per-shard non-decreasing-release invariant
    // without forcing global serialization.
    const Time local = std::max(r, shard.arb.clock());
    if (effectiveRelease != nullptr) *effectiveRelease = local;
    std::vector<QualityMove> localMoves;
    decision = shard.arb.submit(
        spec, local, moves != nullptr ? &localMoves : nullptr);
    if (moves != nullptr) appendGlobalMoves(shard, std::move(localMoves), *moves);
    if (decision.admitted) {
      bindJob(jobId, home, shard.arb.lastJobId().value());
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }

  if (options_.spill && shards_.size() > 1) {
    // Offer the job to the shard with the most free area near its release.
    // Scoring takes each shard's lock briefly and releases it, so the score
    // can go stale before the submit lock is re-acquired (a competing admit
    // can land in the gap).  The submit therefore re-validates the free-area
    // estimate under the held lock and falls back to the currently best
    // candidate on mismatch, bounded to one re-rank per shard; a sequential
    // caller always validates on the first pass and submits to exactly the
    // shard the old single-scan argmax would have picked.
    struct Candidate {
      int shard = -1;
      std::int64_t freeTicks = -1;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(shards_.size() - 1);
    const int narrowest = minChainWidth(spec);
    for (int k = 0; k < shardCount(); ++k) {
      if (k == home) continue;
      auto& shard = *shards_[static_cast<std::size_t>(k)];
      std::lock_guard<std::mutex> lock(shard.mu);
      const Time from = std::max(r, shard.arb.clock());
      const TimeInterval window{from, from + options_.spillHorizon};
      candidates.push_back(Candidate{
          k,
          static_cast<std::int64_t>(shard.arb.processors()) *
                  window.length() -
              shard.arb.profile().busyProcessorTicks(window)});
    }
    if (spillRaceSeam_) spillRaceSeam_();  // test-only score->submit gap
    // Argmax by free ticks; ties to the lowest shard index (scan order).
    const auto bestOf = [&candidates]() {
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].freeTicks > candidates[best].freeTicks) best = i;
      }
      return best;
    };
    for (int pass = 0; pass < shardCount() && !candidates.empty(); ++pass) {
      auto& candidate = candidates[bestOf()];
      auto& shard = *shards_[static_cast<std::size_t>(candidate.shard)];
      std::lock_guard<std::mutex> lock(shard.mu);
      const Time local = std::max(r, shard.arb.clock());
      const TimeInterval window{local, local + options_.spillHorizon};
      const std::int64_t freeNow =
          static_cast<std::int64_t>(shard.arb.processors()) *
              window.length() -
          shard.arb.profile().busyProcessorTicks(window);
      if (freeNow < candidate.freeTicks && pass + 1 < shardCount()) {
        // Stale score: something was admitted here since the scan.  Re-rank
        // with the fresh value; if another shard now leads, try it instead
        // (the final pass submits regardless, guaranteeing progress).
        candidate.freeTicks = freeNow;
        if (&candidates[bestOf()] != &candidate) continue;
      }
      if (narrowest > shard.arb.processors()) {
        // Even an idle shard of this size cannot hold any chain of the
        // spec: the submit is a guaranteed rejection, so skip it and do not
        // count a spill attempt.
        if (shardedMetrics_ != nullptr) {
          shardedMetrics_->spillNoCandidate->add();
        }
        break;
      }
      if (shardedMetrics_ != nullptr) shardedMetrics_->spillAttempts->add();
      std::vector<QualityMove> localMoves;
      const auto spilled = shard.arb.submit(
          spec, local, moves != nullptr ? &localMoves : nullptr);
      if (moves != nullptr) {
        appendGlobalMoves(shard, std::move(localMoves), *moves);
      }
      if (spilled.admitted) {
        if (effectiveRelease != nullptr) *effectiveRelease = local;
        bindJob(jobId, candidate.shard, shard.arb.lastJobId().value());
        admitted_.fetch_add(1, std::memory_order_relaxed);
        spills_.fetch_add(1, std::memory_order_relaxed);
        if (shardedMetrics_ != nullptr) shardedMetrics_->spillAdmitted->add();
        return spilled;
      }
      break;  // the chosen candidate rejected: final rejection, as before
    }
  }

  if (options_.gang && shards_.size() > 1) {
    auto gang = gangSubmit(jobId, spec, r, effectiveRelease);
    if (gang.admitted) return gang;
  }

  rejected_.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

int ShardedArbitrator::minChainWidth(const task::TunableJobSpec& spec) {
  int narrowest = std::numeric_limits<int>::max();
  for (const auto& chain : spec.chains) {
    narrowest = std::min(narrowest, chain.maxProcessors());
  }
  return narrowest;
}

namespace {

/// One shard's share of one task of a gang placement.
struct GangFragment {
  int shard = 0;
  std::size_t taskIndex = 0;
  sched::TaskPlacement placement;
};

/// A fully planned gang chain: the full-width schedule (the decision
/// surface) plus its per-shard width fragments.
struct GangPlan {
  std::size_t chainIndex = 0;
  double quality = 0.0;
  Time finish = 0;
  std::vector<sched::TaskPlacement> fullWidth;
  std::vector<GangFragment> fragments;
};

}  // namespace

sched::AdmissionDecision ShardedArbitrator::gangSubmit(
    std::uint64_t jobId, const task::TunableJobSpec& spec, Time release,
    Time* effectiveRelease) {
  sched::AdmissionDecision rejection;
  rejection.chainsConsidered = static_cast<int>(spec.chains.size());
  const auto locks = lockAll();

  // Gang eligibility: only jobs the regular per-shard path could never
  // admit — no chain of the spec fits even the widest shard.  Everything
  // narrower already had its shot at the home shard and the spill target.
  int widestShard = 0;
  for (const auto& shard : shards_) {
    widestShard = std::max(widestShard, shard->arb.processors());
  }
  if (minChainWidth(spec) <= widestShard) return rejection;
  if (shardedMetrics_ != nullptr) shardedMetrics_->gangAttempts->add();

  // One common release for every fragment: no shard may be asked to commit
  // behind its own clock.
  Time rGang = release;
  for (const auto& shard : shards_) {
    rGang = std::max(rGang, shard->arb.clock());
  }

  // Availability changes only at profile breakpoints, so the earliest start
  // of each task is either its predecessor's finish or a breakpoint (the
  // planner is exact first-fit over the aggregated availability).  The
  // profiles are immutable while every lock is held, so one merged list
  // serves the whole plan.
  std::set<Time> merged;
  for (const auto& shard : shards_) {
    for (const Time t : shard->arb.profile().breakpoints()) merged.insert(t);
  }
  const std::vector<Time> breakpoints(merged.begin(), merged.end());

  // Plan each chain read-only; keep the best by quality, then earliest
  // finish, then chain declaration order (gang admission is the machine's
  // last word on a job, so it maximizes achieved quality like
  // ChainChoice::QualityFirst).
  std::optional<GangPlan> best;
  int schedulable = 0;
  for (std::size_t c = 0; c < spec.chains.size(); ++c) {
    const auto& chain = spec.chains[c];
    GangPlan plan;
    plan.chainIndex = c;
    plan.quality = chain.quality(spec.qualityComposition);
    Time prevEnd = rGang;
    bool feasible = true;
    for (std::size_t t = 0; t < chain.tasks.size(); ++t) {
      const auto& taskSpec = chain.tasks[t];
      const int width = taskSpec.request.processors;
      const Time duration = taskSpec.request.duration;
      const Time deadline = taskSpec.relativeDeadline >= kTimeInfinity
                                ? kTimeInfinity
                                : rGang + taskSpec.relativeDeadline;
      std::optional<Time> start;
      Time candidateStart = prevEnd;
      auto next = std::upper_bound(breakpoints.begin(), breakpoints.end(),
                                   prevEnd);
      while (true) {
        if (deadline < kTimeInfinity && candidateStart + duration > deadline) {
          break;  // later candidates only finish later
        }
        const TimeInterval window{candidateStart, candidateStart + duration};
        int total = 0;
        for (const auto& shard : shards_) {
          total += shard->arb.profile().minAvailable(window);
        }
        if (total >= width) {
          start = candidateStart;
          break;
        }
        if (next == breakpoints.end()) break;
        candidateStart = *next++;
      }
      if (!start.has_value()) {
        feasible = false;
        break;
      }
      const TimeInterval window{*start, *start + duration};
      plan.fullWidth.push_back(
          sched::TaskPlacement{window, width, deadline});
      // Greedy fragmentation in shard index order: deterministic, and the
      // sum of per-shard minima over the window covers the width by
      // construction.
      int remaining = width;
      for (int k = 0; k < shardCount() && remaining > 0; ++k) {
        const int take = std::min(
            remaining,
            shards_[static_cast<std::size_t>(k)]->arb.profile().minAvailable(
                window));
        if (take <= 0) continue;
        plan.fragments.push_back(GangFragment{
            k, t, sched::TaskPlacement{window, take, deadline}});
        remaining -= take;
      }
      TPRM_CHECK(remaining == 0, "gang fragmentation lost width");
      prevEnd = window.end;
    }
    if (!feasible) continue;
    plan.finish = prevEnd;
    ++schedulable;
    if (!best.has_value() || plan.quality > best->quality ||
        (plan.quality == best->quality && plan.finish < best->finish)) {
      best = std::move(plan);
    }
  }
  rejection.chainsSchedulable = schedulable;
  if (!best.has_value()) return rejection;

  // Group fragments per shard (they are already in shard index order).
  std::vector<std::vector<sched::TaskPlacement>> perShard(
      static_cast<std::size_t>(shardCount()));
  std::vector<std::vector<std::size_t>> perShardTasks(
      static_cast<std::size_t>(shardCount()));
  for (const auto& fragment : best->fragments) {
    perShard[static_cast<std::size_t>(fragment.shard)].push_back(
        fragment.placement);
    perShardTasks[static_cast<std::size_t>(fragment.shard)].push_back(
        fragment.taskIndex);
  }

  // Phase 1: trial-reserve each participating shard's fragments under that
  // shard's undo log, in shard index order.  Any failure aborts every
  // reserve taken so far — the profiles come back bit-for-bit.
  std::vector<int> reserved;
  bool ok = true;
  for (int k = 0; k < shardCount(); ++k) {
    if (perShard[static_cast<std::size_t>(k)].empty()) continue;
    if (shards_[static_cast<std::size_t>(k)]->arb.gangReserve(
            perShard[static_cast<std::size_t>(k)])) {
      reserved.push_back(k);
    } else {
      ok = false;
      break;
    }
  }
  if (!ok) {
    for (const int k : reserved) {
      shards_[static_cast<std::size_t>(k)]->arb.gangAbort();
    }
    if (shardedMetrics_ != nullptr) shardedMetrics_->gangRollbacks->add();
    return rejection;
  }

  // Phase 2: commit every fragment and register the gang binding.
  {
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    auto& members = gangs_[jobId];
    for (const int k : reserved) {
      auto& shard = *shards_[static_cast<std::size_t>(k)];
      const auto localId = shard.arb.gangCommit(
          spec, best->chainIndex, best->quality, rGang,
          perShard[static_cast<std::size_t>(k)],
          perShardTasks[static_cast<std::size_t>(k)]);
      shard.toGlobal[localId] = jobId;
      members.push_back({k, localId});
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  gangAdmitted_.fetch_add(1, std::memory_order_relaxed);
  if (shardedMetrics_ != nullptr) {
    shardedMetrics_->gangAdmitted->add();
    shardedMetrics_->gangFragmentsPlaced->add(
        static_cast<std::uint64_t>(best->fragments.size()));
  }
  if (effectiveRelease != nullptr) *effectiveRelease = rGang;

  sched::AdmissionDecision decision;
  decision.admitted = true;
  decision.quality = best->quality;
  decision.chainsConsidered = static_cast<int>(spec.chains.size());
  decision.chainsSchedulable = schedulable;
  decision.schedule.chainIndex = best->chainIndex;
  decision.schedule.placements = std::move(best->fullWidth);
  return decision;
}

std::int64_t ShardedArbitrator::cancel(std::uint64_t jobId,
                                       std::vector<QualityMove>* moves) {
  if (shards_.size() == 1) {
    // Global and local ids coincide; forwarding unknown ids too preserves
    // the unsharded miss accounting exactly.
    auto& shard = *shards_[0];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<QualityMove> localMoves;
    const auto freed =
        shard.arb.cancel(jobId, moves != nullptr ? &localMoves : nullptr);
    if (moves != nullptr) appendGlobalMoves(shard, std::move(localMoves), *moves);
    shard.toGlobal.erase(jobId);
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    toLocal_.erase(jobId);
    return freed;
  }

  // Gang jobs first: the binding table makes every fragment one job, so a
  // cancel releases all of them (in shard index order, one lock at a time).
  std::vector<std::pair<int, std::uint64_t>> members;
  {
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    const auto it = gangs_.find(jobId);
    if (it != gangs_.end()) {
      members = std::move(it->second);
      gangs_.erase(it);
    }
  }
  if (!members.empty()) {
    std::int64_t freed = 0;
    for (const auto& [k, localId] : members) {
      auto& shard = *shards_[static_cast<std::size_t>(k)];
      std::lock_guard<std::mutex> lock(shard.mu);
      std::vector<QualityMove> localMoves;
      freed += shard.arb.cancel(localId,
                                moves != nullptr ? &localMoves : nullptr);
      if (moves != nullptr) {
        appendGlobalMoves(shard, std::move(localMoves), *moves);
      }
      shard.toGlobal.erase(localId);
    }
    return freed;
  }

  // TOCTOU guard: the binding is read under mapMutex_, but the shard lock
  // is taken *afterwards* — a concurrent resize (which prunes dropped
  // jobs' bindings) or a racing cancel can retire the job, and a future
  // migration could move it, in that gap.  Re-validate the binding under
  // the held shard lock (the same pattern as the spill revalidation fix)
  // and retry from the map on a move; a retired binding falls through to
  // the miss path below.  Lock order stays shard.mu -> mapMutex_.
  for (;;) {
    std::optional<std::pair<int, std::uint64_t>> location;
    {
      std::lock_guard<std::mutex> mapLock(mapMutex_);
      const auto it = toLocal_.find(jobId);
      if (it != toLocal_.end()) location = it->second;
    }
    if (!location.has_value()) break;  // unknown or retired -> miss path
    if (cancelRaceSeam_) cancelRaceSeam_();
    auto& shard = *shards_[static_cast<std::size_t>(location->first)];
    std::lock_guard<std::mutex> lock(shard.mu);
    {
      std::lock_guard<std::mutex> mapLock(mapMutex_);
      const auto it = toLocal_.find(jobId);
      if (it == toLocal_.end()) break;         // retired in the gap
      if (it->second != *location) continue;   // moved in the gap: retry
      toLocal_.erase(it);
    }
    std::vector<QualityMove> localMoves;
    const auto freed = shard.arb.cancel(
        location->second, moves != nullptr ? &localMoves : nullptr);
    if (moves != nullptr) {
      appendGlobalMoves(shard, std::move(localMoves), *moves);
    }
    shard.toGlobal.erase(location->second);
    return freed;
  }
  // Unknown, rejected, already finished, or retired while we raced for the
  // shard lock: account the miss on the home shard, like the unsharded
  // arbitrator would.
  auto& shard = *shards_[static_cast<std::size_t>(homeShard(jobId))];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto* metrics = shard.arb.metrics();
  if (metrics != nullptr && metrics->cancelMisses != nullptr) {
    metrics->cancelMisses->add();
  }
  return 0;
}

RenegotiationReport ShardedArbitrator::resize(int processors, Time when) {
  TPRM_CHECK(processors >= shardCount(),
             "resize needs at least one processor per shard");
  const Time w = advanceClock(when);
  const auto locks = lockAll();

  RenegotiationReport report;
  report.processorsAfter = processors;
  const int base = processors / shardCount();
  const int extra = processors % shardCount();
  for (int k = 0; k < shardCount(); ++k) {
    auto& shard = *shards_[static_cast<std::size_t>(k)];
    report.processorsBefore += shard.arb.processors();
    const auto shardReport = shard.arb.resize(
        base + (k < extra ? 1 : 0), std::max(w, shard.arb.clock()));
    for (const auto localId : shardReport.kept) {
      report.kept.push_back(shard.toGlobal.at(localId));
    }
    for (const auto localId : shardReport.reconfigured) {
      report.reconfigured.push_back(shard.toGlobal.at(localId));
    }
    for (const auto localId : shardReport.dropped) {
      report.dropped.push_back(shard.toGlobal.at(localId));
    }
    // Live sets shrank (drops, retirements): prune dead id bindings so the
    // maps track live jobs only.
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    for (auto it = shard.toGlobal.begin(); it != shard.toGlobal.end();) {
      if (!shard.arb.live(it->first)) {
        toLocal_.erase(it->second);
        it = shard.toGlobal.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Gang post-processing (locks still held): a gang whose fragment was
  // dropped anywhere has lost its machine-wide guarantee — cancel the
  // surviving sibling fragments and report the gang dropped exactly once.
  // A gang kept on every shard is reported kept once (the per-shard loop
  // listed it once per fragment); a gang whose fragments all finished is
  // simply garbage-collected from the binding table.
  {
    std::lock_guard<std::mutex> mapLock(mapMutex_);
    std::set<std::uint64_t> droppedIds(report.dropped.begin(),
                                       report.dropped.end());
    for (auto it = gangs_.begin(); it != gangs_.end();) {
      const std::uint64_t globalId = it->first;
      auto& members = it->second;
      bool anyLive = false;
      for (const auto& [k, localId] : members) {
        if (shards_[static_cast<std::size_t>(k)]->arb.live(localId)) {
          anyLive = true;
        }
      }
      if (droppedIds.count(globalId) != 0) {
        for (const auto& [k, localId] : members) {
          auto& shard = *shards_[static_cast<std::size_t>(k)];
          if (shard.arb.live(localId)) {
            (void)shard.arb.cancel(localId, nullptr);
            shard.toGlobal.erase(localId);
          }
        }
        const auto keptEnd = std::remove(report.kept.begin(),
                                         report.kept.end(), globalId);
        report.kept.erase(keptEnd, report.kept.end());
        it = gangs_.erase(it);
      } else if (!anyLive) {
        it = gangs_.erase(it);  // every fragment finished
      } else {
        ++it;
      }
    }
  }
  std::sort(report.kept.begin(), report.kept.end());
  report.kept.erase(std::unique(report.kept.begin(), report.kept.end()),
                    report.kept.end());
  std::sort(report.reconfigured.begin(), report.reconfigured.end());
  std::sort(report.dropped.begin(), report.dropped.end());
  report.dropped.erase(
      std::unique(report.dropped.begin(), report.dropped.end()),
      report.dropped.end());
  return report;
}

ShardRebalanceReport ShardedArbitrator::rebalance(Time when) {
  ShardRebalanceReport report;
  if (shardCount() < 2) return report;
  if (shardedMetrics_ != nullptr) shardedMetrics_->rebalanceChecks->add();
  const Time w = advanceClock(when);
  if (rebalanceRaceSeam_) rebalanceRaceSeam_();  // test-only clock->lock gap
  const auto locks = lockAll();

  // A shard's idle count is the capacity free from `when` on — processors
  // the donor can give up without touching any commitment.
  int donor = -1;
  int receiver = -1;
  std::vector<int> idle(static_cast<std::size_t>(shardCount()), 0);
  for (int k = 0; k < shardCount(); ++k) {
    const auto& arb = shards_[static_cast<std::size_t>(k)]->arb;
    const Time from = std::max(w, arb.clock());
    idle[static_cast<std::size_t>(k)] =
        arb.profile().minAvailable(TimeInterval{from, kTimeInfinity});
    if (donor < 0 || idle[static_cast<std::size_t>(k)] >
                         idle[static_cast<std::size_t>(donor)]) {
      donor = k;
    }
    if (receiver < 0 || idle[static_cast<std::size_t>(k)] <
                            idle[static_cast<std::size_t>(receiver)]) {
      receiver = k;
    }
  }
  report.maxIdle = idle[static_cast<std::size_t>(donor)];
  report.minIdle = idle[static_cast<std::size_t>(receiver)];
  const int gap = report.maxIdle - report.minIdle;
  if (donor == receiver || gap < options_.rebalanceThreshold) return report;

  auto& donorArb = shards_[static_cast<std::size_t>(donor)]->arb;
  auto& receiverArb = shards_[static_cast<std::size_t>(receiver)]->arb;
  const int move = std::min({gap / 2, report.maxIdle,
                             donorArb.processors() - 1});
  if (move <= 0) return report;

  // Both resizes happen at one common instant — the later of the sweep time
  // and both shard clocks — and the receiver grows before the donor shrinks,
  // so machine-wide capacity never transiently dips below the total.  (The
  // old per-shard times shrank the donor at max(w, donorClock) while the
  // receiver only grew at max(w, receiverClock): with the receiver's clock
  // ahead, the machine was short `move` processors over the interval between
  // the two instants, and a submit racing the sweep could be spuriously
  // rejected.)  Donor idleness measured from an earlier instant still holds
  // from the later one: always-idle-from-t is always-idle-from-t' for any
  // t' >= t.
  const Time at = std::max({w, donorArb.clock(), receiverArb.clock()});
  (void)receiverArb.resize(receiverArb.processors() + move, at);
  const auto shrink = donorArb.resize(donorArb.processors() - move, at);
  // The donor only gives up always-idle processors, so the shrink must keep
  // every reservation in place.
  TPRM_CHECK(shrink.dropped.empty(), "rebalance shrink dropped a commitment");
  report.moved = true;
  report.fromShard = donor;
  report.toShard = receiver;
  report.processors = move;
  report.at = at;
  if (shardedMetrics_ != nullptr) {
    shardedMetrics_->rebalanceMoves->add();
    shardedMetrics_->rebalanceProcessorsMoved->add(
        static_cast<std::uint64_t>(move));
  }
  return report;
}

resource::VerificationReport ShardedArbitrator::verify() const {
  const auto locks = lockAll();
  for (const auto& shard : shards_) {
    auto report = shard->arb.verify();
    if (!report.ok) return report;
  }
  return resource::VerificationReport{};
}

void ShardedArbitrator::attachReshapePolicy(const ReshapePolicy* policy) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->arb.attachReshapePolicy(policy);
  }
}

void ShardedArbitrator::attachMetrics(
    std::vector<obs::NegotiationMetrics*> perShard,
    obs::ShardedMetrics* sharded) {
  TPRM_CHECK(perShard.empty() ||
                 perShard.size() == static_cast<std::size_t>(shardCount()),
             "per-shard metrics bundle count must match shard count");
  for (int k = 0; k < shardCount(); ++k) {
    auto& shard = *shards_[static_cast<std::size_t>(k)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.arb.attachMetrics(
        perShard.empty() ? nullptr : perShard[static_cast<std::size_t>(k)]);
  }
  shardedMetrics_ = sharded;
}

}  // namespace tprm::qos
