#include "qos/qos.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace tprm::qos {

// ---------------------------------------------------------------------------
// QoSArbitrator
// ---------------------------------------------------------------------------

namespace {

/// Elastic moves always maximize restored/retained quality; everything else
/// (malleability, fit policy) follows the configured heuristic.
sched::GreedyOptions elasticOptions(sched::GreedyOptions options) {
  options.chainChoice = sched::ChainChoice::QualityFirst;
  return options;
}

}  // namespace

QoSArbitrator::QoSArbitrator(int processors, sched::GreedyOptions options)
    : profile_(processors), ledger_(processors), options_(options),
      heuristic_(options), elasticHeuristic_(elasticOptions(options)) {}

void QoSArbitrator::attachMetrics(obs::NegotiationMetrics* metrics) {
  metrics_ = metrics;
  profile_.attachMetrics(metrics != nullptr ? &metrics->profile : nullptr);
  heuristic_.attachMetrics(metrics != nullptr ? &metrics->arbitrator
                                              : nullptr);
}

void QoSArbitrator::retireFinished() {
  for (auto it = live_.begin(); it != live_.end();) {
    const auto& placements = it->second.placements;
    if (!placements.empty() && placements.back().interval.end <= clock_) {
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
}

void QoSArbitrator::record(std::uint64_t jobId, std::size_t chainIndex,
                           const std::vector<sched::TaskPlacement>& placements,
                           std::size_t firstTaskIndex) {
  for (std::size_t k = 0; k < placements.size(); ++k) {
    const auto& p = placements[k];
    ledger_.add(resource::Reservation{
        jobId, static_cast<int>(firstTaskIndex + k),
        static_cast<int>(chainIndex), p.interval, p.processors, p.deadline});
  }
}

sched::AdmissionDecision QoSArbitrator::submit(
    const task::TunableJobSpec& spec, Time release,
    std::vector<QualityMove>* moves) {
  TPRM_CHECK(gangTrial_ == nullptr,
             "submit is forbidden while a gang reserve is open");
  TPRM_CHECK(release >= clock_,
             "negotiations must arrive in non-decreasing release order");
  clock_ = release;
  profile_.discardBefore(clock_);
  retireFinished();

  // Elastic model: load may have dropped since the last demotion — walk
  // demoted jobs back up the ladder before admitting new work.  Runs before
  // the id draw so the newcomer's id (and with sharding, its route) does not
  // depend on promotion outcomes.
  promotePass(moves);

  task::JobInstance job;
  job.id = nextJobId_++;
  job.release = release;
  job.spec = spec;
  if (metrics_ != nullptr) metrics_->negotiations->add();
  auto decision = heuristic_.admit(job, profile_);
  if (!decision.admitted && policy_ != nullptr) {
    // Elastic model: turn the rejection into a quality trade if the policy
    // can name victims whose demotion makes room.
    auto reshaped = reshapeAdmit(job, moves);
    if (reshaped.admitted) decision = std::move(reshaped);
  }
  if (!decision.admitted) {
    ++rejected_;
    if (metrics_ != nullptr) metrics_->rejectedNoChain->add();
    return decision;
  }
  ++admitted_;
  if (metrics_ != nullptr) metrics_->admitted->add();
  record(job.id, decision.schedule.chainIndex, decision.schedule.placements);
  live_[job.id] = LiveJob{spec, release, decision.schedule.chainIndex,
                          decision.schedule.placements, decision.quality,
                          decision.quality};
  return decision;
}

std::int64_t QoSArbitrator::cancel(std::uint64_t jobId,
                                   std::vector<QualityMove>* moves) {
  TPRM_CHECK(gangTrial_ == nullptr,
             "cancel is forbidden while a gang reserve is open");
  const auto it = live_.find(jobId);
  if (it == live_.end()) {
    if (metrics_ != nullptr) metrics_->cancelMisses->add();
    return 0;
  }
  if (metrics_ != nullptr) metrics_->cancels->add();
  std::int64_t freed = 0;
  for (const auto& placement : it->second.placements) {
    // Only not-yet-started reservations can be returned.  A running task is
    // non-preemptible (the same rule resize() phase 1 enforces), so its
    // remainder stays reserved until the task completes; finished placements
    // have nothing left to give back.
    if (placement.interval.begin < clock_) continue;
    profile_.release(placement.interval, placement.processors);
    freed += static_cast<std::int64_t>(placement.processors) *
             placement.interval.length();
  }
  // Keep the audit trail in step: the returned capacity is no longer a
  // commitment, so later admissions may legitimately reuse it.
  (void)ledger_.annul(jobId, clock_);
  live_.erase(it);
  // Elastic model: the freed capacity is exactly the signal a demoted job is
  // waiting on — promote immediately rather than on the next submission.
  if (freed > 0) promotePass(moves);
  return freed;
}

RenegotiationReport QoSArbitrator::resize(int processors, Time when) {
  TPRM_CHECK(gangTrial_ == nullptr,
             "resize is forbidden while a gang reserve is open");
  TPRM_CHECK(processors > 0, "machine needs at least one processor");
  TPRM_CHECK(when >= clock_, "resize cannot happen in the past");
  clock_ = when;
  retireFinished();
  if (metrics_ != nullptr) metrics_->resizes->add();

  RenegotiationReport report;
  report.processorsBefore = profile_.totalProcessors();
  report.processorsAfter = processors;

  // Start a new machine era: fresh profile and ledger at the new capacity.
  pastEras_.push_back(std::move(ledger_));
  ledger_ = resource::ReservationLedger(processors);
  resource::AvailabilityProfile fresh(processors);
  fresh.discardBefore(clock_);
  profile_ = std::move(fresh);
  // The new era's profile starts unattached; re-wire the observation hook.
  if (metrics_ != nullptr) profile_.attachMetrics(&metrics_->profile);

  // Phase 1: running tasks are non-preemptible — pin their remainders where
  // they are.  A running task that no longer fits kills its job outright.
  std::vector<std::uint64_t> doomed;
  for (auto& [jobId, job] : live_) {
    for (std::size_t t = 0; t < job.placements.size(); ++t) {
      const auto& p = job.placements[t];
      // Strictly-started only: a task beginning exactly at the resize
      // instant has consumed nothing and is re-placed in phase 2 instead.
      if (p.interval.begin < clock_ && clock_ < p.interval.end) {
        const TimeInterval rest{clock_, p.interval.end};
        if (profile_.minAvailable(rest) >= p.processors) {
          profile_.reserve(rest, p.processors);
          ledger_.add(resource::Reservation{
              jobId, static_cast<int>(taskIndexOf(job, t)),
              static_cast<int>(job.chainIndex), rest, p.processors,
              p.deadline});
        } else {
          doomed.push_back(jobId);
        }
        break;  // at most one task of a chain runs at a time
      }
    }
  }
  for (const auto jobId : doomed) {
    live_.erase(jobId);
    report.dropped.push_back(jobId);
    if (metrics_ != nullptr) metrics_->droppedRunningNoFit->add();
  }

  // Phase 2: re-place each job's future tasks, in job-id (arrival) order.
  std::vector<std::uint64_t> ids;
  ids.reserve(live_.size());
  for (const auto& [jobId, job] : live_) {
    (void)job;
    ids.push_back(jobId);
  }
  std::sort(ids.begin(), ids.end());

  for (const auto jobId : ids) {
    LiveJob& job = live_.at(jobId);
    // Partition this job's placements.
    std::size_t firstFuture = 0;
    Time earliestStart = clock_;
    while (firstFuture < job.placements.size() &&
           job.placements[firstFuture].interval.begin < clock_) {
      earliestStart =
          std::max(earliestStart, job.placements[firstFuture].interval.end);
      ++firstFuture;
    }
    if (firstFuture == job.placements.size()) {
      // Fully running/finished; phase 1 already pinned what matters.
      report.kept.push_back(jobId);
      if (metrics_ != nullptr) metrics_->resizeKept->add();
      continue;
    }

    // Cheapest outcome: the original future placements still fit verbatim.
    // Probed under an undo-log trial scope: committed if they all fit,
    // rolled back (by the scope's destructor) otherwise.
    bool verbatim = true;
    {
      resource::AvailabilityProfile::Trial trial(profile_);
      for (std::size_t k = firstFuture; k < job.placements.size(); ++k) {
        const auto& p = job.placements[k];
        if (profile_.minAvailable(p.interval) >= p.processors) {
          profile_.reserve(p.interval, p.processors);
        } else {
          verbatim = false;
          break;
        }
      }
      if (verbatim) {
        trial.commit();
        for (std::size_t k = firstFuture; k < job.placements.size(); ++k) {
          const auto& p = job.placements[k];
          ledger_.add(resource::Reservation{
              jobId, static_cast<int>(taskIndexOf(job, k)),
              static_cast<int>(job.chainIndex), p.interval, p.processors,
              p.deadline});
        }
        report.kept.push_back(jobId);
        if (metrics_ != nullptr) metrics_->resizeKept->add();
        continue;
      }
    }

    if (job.pinned) {
      // A gang fragment is one shard's share of a cross-shard job; its spec
      // describes the whole job, so renegotiating it here alone would
      // desynchronise it from the sibling fragments on other shards (or
      // re-admit the full job on this shard).  Verbatim-or-drop: the sharded
      // wrapper cancels the siblings of a dropped fragment.
      report.dropped.push_back(jobId);
      live_.erase(jobId);
      if (metrics_ != nullptr) metrics_->droppedRenegotiation->add();
      continue;
    }

    // Full renegotiation.  If nothing has started, every chain of the
    // original spec is still on the table; otherwise only the suffix of the
    // committed chain (outputs of earlier tasks fix the path).
    task::JobInstance instance;
    instance.id = jobId;
    instance.release = earliestStart;
    bool feasibleSpec = true;
    // When chains are filtered during rebasing (firstFuture == 0), maps the
    // instance's chain index back to the original spec's chain index.
    std::vector<std::size_t> originalChain;
    if (firstFuture == 0) {
      instance.spec.name = job.spec.name;
      // Rebase deadlines: relativeDeadline was relative to the original
      // release; make it relative to the new one.  A chain whose rebased
      // deadline can no longer be met is off the table, but the surviving
      // chains are exactly the freedom tunability exists to exploit — the
      // job is infeasible only when no chain survives.
      for (std::size_t c = 0; c < job.spec.chains.size(); ++c) {
        task::Chain chain = job.spec.chains[c];
        bool chainFeasible = true;
        for (auto& taskSpec : chain.tasks) {
          if (taskSpec.relativeDeadline >= kTimeInfinity) continue;
          const Time absolute = job.release + taskSpec.relativeDeadline;
          if (absolute <= earliestStart + taskSpec.request.duration) {
            chainFeasible = false;
            break;
          }
          taskSpec.relativeDeadline = absolute - earliestStart;
        }
        if (!chainFeasible) continue;
        originalChain.push_back(c);
        instance.spec.chains.push_back(std::move(chain));
      }
      feasibleSpec = !instance.spec.chains.empty();
    } else {
      const auto& chain = job.spec.chains[job.chainIndex];
      task::Chain suffix;
      suffix.name = chain.name + "-suffix";
      for (std::size_t k = firstFuture; k < chain.tasks.size(); ++k) {
        task::TaskSpec taskSpec = chain.tasks[k];
        if (taskSpec.relativeDeadline < kTimeInfinity) {
          const Time absolute = job.release + taskSpec.relativeDeadline;
          if (absolute <= earliestStart + taskSpec.request.duration) {
            feasibleSpec = false;
          }
          taskSpec.relativeDeadline = absolute - earliestStart;
        }
        suffix.tasks.push_back(std::move(taskSpec));
      }
      instance.spec.name = job.spec.name;
      instance.spec.chains = {std::move(suffix)};
    }

    if (!feasibleSpec) {
      report.dropped.push_back(jobId);
      live_.erase(jobId);
      if (metrics_ != nullptr) metrics_->droppedInfeasible->add();
      continue;
    }

    const auto decision = heuristic_.admit(instance, profile_);
    if (!decision.admitted) {
      report.dropped.push_back(jobId);
      live_.erase(jobId);
      if (metrics_ != nullptr) metrics_->droppedRenegotiation->add();
      continue;
    }
    report.reconfigured.push_back(jobId);
    if (metrics_ != nullptr) metrics_->resizeReconfigured->add();
    // Splice the new placements (and possibly new chain) into the live job.
    if (firstFuture == 0) {
      job.chainIndex = originalChain[decision.schedule.chainIndex];
      job.release = earliestStart;
      job.placements = decision.schedule.placements;
      job.currentQuality = decision.quality;
      record(jobId, job.chainIndex, job.placements);
    } else {
      job.placements.resize(firstFuture);
      job.placements.insert(job.placements.end(),
                            decision.schedule.placements.begin(),
                            decision.schedule.placements.end());
      record(jobId, job.chainIndex, decision.schedule.placements, firstFuture);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Elastic renegotiation (arbitrator-initiated quality trades)
// ---------------------------------------------------------------------------

bool QoSArbitrator::notStarted(const LiveJob& job) const {
  // Chain tasks are sequential, so the first placement is the earliest; a
  // placement beginning exactly at the clock has consumed nothing yet (the
  // same strictness resize() phase 1 uses).
  return job.placements.empty() ||
         job.placements.front().interval.begin >= clock_;
}

std::vector<ElasticCandidate> QoSArbitrator::elasticCandidates(
    bool demotedOnly) const {
  std::vector<ElasticCandidate> out;
  for (const auto& [jobId, job] : live_) {
    if (job.pinned) continue;  // gang fragments never move independently
    if (!notStarted(job)) continue;
    if (demotedOnly && !(job.currentQuality < job.admittedQuality)) continue;
    ElasticCandidate candidate;
    candidate.jobId = jobId;
    candidate.chainIndex = job.chainIndex;
    candidate.quality = job.currentQuality;
    candidate.admittedQuality = job.admittedQuality;
    candidate.release = job.release;
    candidate.floorQuality = job.currentQuality;
    for (const auto& chain : job.spec.chains) {
      const double q = chain.quality(job.spec.qualityComposition);
      candidate.floorQuality = std::min(candidate.floorQuality, q);
      if (q < job.currentQuality && q > candidate.nextQuality) {
        candidate.nextQuality = q;
      }
    }
    if (!demotedOnly && candidate.nextQuality < 0) continue;  // lowest rung
    for (const auto& p : job.placements) {
      candidate.futureArea += static_cast<std::int64_t>(p.processors) *
                              p.interval.length();
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

std::optional<QualityMove> QoSArbitrator::tryMoveInTrial(
    resource::AvailabilityProfile::Trial& trial, std::uint64_t jobId,
    const LiveJob& job, bool promote) {
  const auto mark = trial.savepoint();
  for (const auto& p : job.placements) {
    profile_.release(p.interval, p.processors);
  }

  // Restrict the job to the target rung band, rebasing deadlines exactly as
  // resize() does for unstarted jobs: absolute deadlines are preserved, only
  // their anchor moves to the clock.  job.release is deliberately left alone
  // by applyMove, so repeated moves keep rebasing against the original
  // contract rather than compounding drift.
  task::JobInstance instance;
  instance.id = jobId;
  instance.release = clock_;
  instance.spec.name = job.spec.name;
  instance.spec.qualityComposition = job.spec.qualityComposition;
  std::vector<std::size_t> originalChain;
  for (std::size_t c = 0; c < job.spec.chains.size(); ++c) {
    const double q = job.spec.chains[c].quality(job.spec.qualityComposition);
    const bool inBand = promote
                            ? q > job.currentQuality &&
                                  q <= job.admittedQuality
                            : q < job.currentQuality;
    if (!inBand) continue;
    task::Chain chain = job.spec.chains[c];
    bool chainFeasible = true;
    for (auto& taskSpec : chain.tasks) {
      if (taskSpec.relativeDeadline >= kTimeInfinity) continue;
      const Time absolute = job.release + taskSpec.relativeDeadline;
      if (absolute <= clock_ + taskSpec.request.duration) {
        chainFeasible = false;
        break;
      }
      taskSpec.relativeDeadline = absolute - clock_;
    }
    if (!chainFeasible) continue;
    originalChain.push_back(c);
    instance.spec.chains.push_back(std::move(chain));
  }
  if (instance.spec.chains.empty()) {
    trial.rollbackTo(mark);
    return std::nullopt;
  }

  auto decision = elasticHeuristic_.admitInTrial(instance, profile_, trial);
  if (!decision.admitted) {
    trial.rollbackTo(mark);
    return std::nullopt;
  }
  QualityMove move;
  move.jobId = jobId;
  move.promotion = promote;
  move.fromChain = job.chainIndex;
  move.toChain = originalChain[decision.schedule.chainIndex];
  move.fromQuality = job.currentQuality;
  move.toQuality = decision.quality;
  move.schedule = std::move(decision.schedule);
  move.schedule.chainIndex = move.toChain;
  return move;
}

void QoSArbitrator::applyMove(const QualityMove& move) {
  auto& job = live_.at(move.jobId);
  (void)ledger_.annul(move.jobId, clock_);
  record(move.jobId, move.toChain, move.schedule.placements);
  job.chainIndex = move.toChain;
  job.placements = move.schedule.placements;
  job.currentQuality = move.toQuality;
  if (metrics_ != nullptr) {
    if (move.promotion) {
      metrics_->elastic.promotions->add();
      metrics_->elastic.promotionQualityDelta->record(move.toQuality -
                                                      move.fromQuality);
    } else {
      metrics_->elastic.demotions->add();
      metrics_->elastic.demotionQualityDelta->record(move.fromQuality -
                                                     move.toQuality);
    }
  }
}

sched::AdmissionDecision QoSArbitrator::reshapeAdmit(
    const task::JobInstance& newcomer, std::vector<QualityMove>* moves) {
  sched::AdmissionDecision rejected;
  rejected.chainsConsidered = static_cast<int>(newcomer.spec.chains.size());
  const auto candidates = elasticCandidates(/*demotedOnly=*/false);
  if (candidates.empty()) return rejected;
  const auto order =
      policy_->demotionOrder(candidates, newcomer.spec, newcomer.release);
  if (order.empty()) return rejected;
  if (metrics_ != nullptr) metrics_->elastic.reshapeAttempts->add();

  // One undo-log scope covers every victim shrink and the newcomer's
  // placement: nothing is visible until the newcomer fits, and a failed
  // reshape leaves no trace.  Ledger/live bookkeeping (not undo-logged) is
  // deferred until after the commit.
  resource::AvailabilityProfile::Trial trial(profile_);
  std::vector<QualityMove> pending;
  sched::AdmissionDecision decision;
  for (const auto victimId : order) {
    const auto it = live_.find(victimId);
    if (it == live_.end() || victimId == newcomer.id) continue;
    if (!notStarted(it->second)) continue;
    auto move = tryMoveInTrial(trial, victimId, it->second,
                               /*promote=*/false);
    if (!move) continue;
    pending.push_back(std::move(*move));
    decision = heuristic_.admitInTrial(newcomer, profile_, trial);
    if (decision.admitted) break;
  }
  if (!decision.admitted) {
    if (metrics_ != nullptr) metrics_->elastic.reshapeFailed->add();
    return rejected;  // ~Trial rolls every shrink back
  }
  trial.commit();
  for (const auto& move : pending) {
    applyMove(move);
    if (moves != nullptr) moves->push_back(move);
  }
  if (metrics_ != nullptr) metrics_->elastic.reshapeAdmitted->add();
  return decision;
}

void QoSArbitrator::promotePass(std::vector<QualityMove>* moves) {
  if (policy_ == nullptr) return;
  const auto demoted = elasticCandidates(/*demotedOnly=*/true);
  if (demoted.empty()) return;
  for (const auto jobId : policy_->promotionOrder(demoted)) {
    const auto it = live_.find(jobId);
    if (it == live_.end()) continue;
    const auto& job = it->second;
    if (!notStarted(job) || !(job.currentQuality < job.admittedQuality)) {
      continue;
    }
    resource::AvailabilityProfile::Trial trial(profile_);
    auto move = tryMoveInTrial(trial, jobId, job, /*promote=*/true);
    if (!move) continue;  // ~Trial restores the job's reservations
    trial.commit();
    applyMove(*move);
    if (moves != nullptr) moves->push_back(std::move(*move));
  }
}

// ---------------------------------------------------------------------------
// Cross-shard gang fragment surface
// ---------------------------------------------------------------------------

bool QoSArbitrator::gangReserve(
    const std::vector<sched::TaskPlacement>& placements) {
  TPRM_CHECK(gangTrial_ == nullptr, "gang reserve already open");
  TPRM_CHECK(!placements.empty(), "a gang fragment reserves something");
  gangTrial_ =
      std::make_unique<resource::AvailabilityProfile::Trial>(profile_);
  for (const auto& p : placements) {
    if (profile_.minAvailable(p.interval) < p.processors) {
      gangTrial_.reset();  // ~Trial rolls the partial reserve back
      return false;
    }
    profile_.reserve(p.interval, p.processors);
  }
  return true;
}

std::uint64_t QoSArbitrator::gangCommit(
    const task::TunableJobSpec& spec, std::size_t chainIndex, double quality,
    Time release, const std::vector<sched::TaskPlacement>& placements,
    const std::vector<std::size_t>& taskIndices) {
  TPRM_CHECK(gangTrial_ != nullptr, "gangCommit needs an open reserve");
  TPRM_CHECK(placements.size() == taskIndices.size(),
             "every gang placement needs its spec task index");
  TPRM_CHECK(release >= clock_, "gang release cannot precede the clock");
  gangTrial_->commit();
  gangTrial_.reset();
  clock_ = release;
  profile_.discardBefore(clock_);
  retireFinished();

  const std::uint64_t jobId = nextJobId_++;
  for (std::size_t k = 0; k < placements.size(); ++k) {
    const auto& p = placements[k];
    ledger_.add(resource::Reservation{
        jobId, static_cast<int>(taskIndices[k]),
        static_cast<int>(chainIndex), p.interval, p.processors, p.deadline});
  }
  LiveJob job;
  job.spec = spec;
  job.release = release;
  job.chainIndex = chainIndex;
  job.placements = placements;
  job.admittedQuality = quality;
  job.currentQuality = quality;
  job.pinned = true;
  job.taskIndices = taskIndices;
  live_[jobId] = std::move(job);
  ++admitted_;
  return jobId;
}

void QoSArbitrator::gangAbort() {
  TPRM_CHECK(gangTrial_ != nullptr, "gangAbort needs an open reserve");
  gangTrial_.reset();  // ~Trial rolls back bit-for-bit
}

resource::VerificationReport QoSArbitrator::verify() const {
  for (const auto& era : pastEras_) {
    const auto report = era.verify();
    if (!report.ok) return report;
  }
  return ledger_.verify();
}

// ---------------------------------------------------------------------------
// QoSAgent
// ---------------------------------------------------------------------------

QoSAgent::QoSAgent(tunable::Program& program) : program_(&program) {
  paths_ = program.enumeratePaths();
  TPRM_CHECK(!paths_.empty(), "program has no feasible execution path");
  jobSpec_.name = program.name();
  jobSpec_.chains.reserve(paths_.size());
  for (const auto& path : paths_) {
    jobSpec_.chains.push_back(path.chain);
    jobSpec_.chains.back().bindings = path.bindings;
  }
  const auto errors = task::validate(jobSpec_);
  TPRM_CHECK(errors.empty(), "program job spec failed validation");
}

std::optional<Allocation> QoSAgent::negotiate(QoSArbitrator& arbitrator,
                                              Time release) {
  const auto decision = arbitrator.submit(jobSpec_, release);
  if (!decision.admitted) {
    allocation_.reset();
    return std::nullopt;
  }
  Allocation allocation;
  allocation.jobId = arbitrator.lastJobId().value();
  allocation.pathIndex = decision.schedule.chainIndex;
  allocation.quality = decision.quality;
  allocation.bindings = paths_[decision.schedule.chainIndex].bindings;
  allocation.schedule = decision.schedule;
  // Configure the application: assign the control parameters of the granted
  // path (Section 3.2: "application configuration just requires setting
  // values for the ... parameters").
  program_->parameters().assign(allocation.bindings);
  allocation_ = std::move(allocation);
  return allocation_;
}

void QoSAgent::run() {
  TPRM_CHECK(allocation_.has_value(),
             "run() requires a successful negotiation");
  program_->execute(paths_[allocation_->pathIndex]);
}

}  // namespace tprm::qos
