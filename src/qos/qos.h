// The MILAN resource-management architecture (Section 3): per-application
// QoS agents negotiating with a system-wide QoS arbitrator.
//
// The negotiation model implemented is the paper's static one: at job
// startup the agent communicates every execution path (with resource
// requirements, deadlines and qualities) up front, and receives either a
// rejection or a resource-allocation profile for one of the paths.  The
// agent then configures the application (assigns control parameters) and the
// application runs along that path.
//
// Hooks beyond the static model (release of reservations, renegotiation on
// resource-level changes) are provided because Section 3 describes them as
// part of the architecture, and the adaptive examples use them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "resource/availability_profile.h"
#include "resource/reservation_ledger.h"
#include "sched/greedy_arbitrator.h"
#include "tunable/program.h"

namespace tprm::obs {
struct NegotiationMetrics;  // obs/metrics.h; nullable observation hook
}  // namespace tprm::obs

namespace tprm::qos {

/// The arbitrator's answer to a negotiation: which path won, when each task
/// will run, and the achieved quality.
struct Allocation {
  std::uint64_t jobId = 0;
  std::size_t pathIndex = 0;
  sched::ChainSchedule schedule;
  double quality = 0.0;
  /// Control-parameter assignment realising the chosen path.
  tunable::Env bindings;
};

/// Outcome of a machine-size renegotiation (Section 3.1: the arbitrator
/// "monitors system resources, and triggers renegotiation on detecting a
/// significant change in resource levels (e.g., on a fault, or when new
/// resources become available ...)").
struct RenegotiationReport {
  int processorsBefore = 0;
  int processorsAfter = 0;
  /// Jobs whose reservations carried over unchanged.
  std::vector<std::uint64_t> kept;
  /// Jobs whose remaining tasks were re-placed (possibly on a different
  /// chain if no task had started yet).
  std::vector<std::uint64_t> reconfigured;
  /// Jobs whose guarantees could not be preserved on the new machine.
  std::vector<std::uint64_t> dropped;
};

/// An admitted-but-not-yet-started malleable job the elastic layer may move
/// along its quality ladder.  `quality`/`chainIndex` describe the current
/// commitment; `admittedQuality` is the quality granted at original
/// admission (the promotion ceiling); `floorQuality` is the lowest quality
/// the job *offered* — its contract floor: demotion never goes below an
/// offered chain, so the floor holds by construction.
struct ElasticCandidate {
  std::uint64_t jobId = 0;
  std::size_t chainIndex = 0;
  double quality = 0.0;
  double admittedQuality = 0.0;
  double floorQuality = 0.0;
  /// Best strictly-lower offered chain quality (the next rung down);
  /// negative when the job is already on its lowest rung.
  double nextQuality = -1.0;
  Time release = 0;
  /// Reserved processor-ticks of the not-yet-started placements — what a
  /// demotion could free.
  std::int64_t futureArea = 0;
};

/// One committed quality move (demotion or promotion) of a live job.
struct QualityMove {
  std::uint64_t jobId = 0;
  bool promotion = false;
  std::size_t fromChain = 0;
  std::size_t toChain = 0;
  double fromQuality = 0.0;
  double toQuality = 0.0;
  /// The job's new schedule (chainIndex is in original-spec numbering).
  sched::ChainSchedule schedule;
};

/// Victim-selection / fairness policy for arbitrator-initiated renegotiation
/// (the elastic model).  The arbitrator owns the *mechanism* — undo-logged
/// trial demotion, floor discipline, commit — and consults a policy only for
/// ordering.  Implementations must be deterministic pure functions of their
/// arguments (decisions replay byte-identically) and thread-safe (shards
/// consult one shared instance concurrently, each under its own lock).
class ReshapePolicy {
 public:
  virtual ~ReshapePolicy() = default;

  /// Orders demotion victims for a rejected newcomer: the arbitrator demotes
  /// greedily in this order, retrying the newcomer after each shrink, and
  /// commits at the first fit.  Return an empty vector to decline.
  [[nodiscard]] virtual std::vector<std::uint64_t> demotionOrder(
      const std::vector<ElasticCandidate>& candidates,
      const task::TunableJobSpec& spec, Time release) const = 0;

  /// Fairness order for the promotion pass over currently-demoted jobs.
  [[nodiscard]] virtual std::vector<std::uint64_t> promotionOrder(
      const std::vector<ElasticCandidate>& demoted) const = 0;
};

/// System-wide QoS arbitrator: owns the machine's availability profile,
/// performs admission control, and records every commitment.
///
/// The arbitrator's clock only moves forward (negotiations carry release
/// times); profile detail behind the clock is garbage-collected.
class QoSArbitrator {
 public:
  /// `processors`: machine size.  `options`: heuristic configuration
  /// (Section 5.2 defaults).
  explicit QoSArbitrator(int processors,
                         sched::GreedyOptions options = {});

  /// Admission control + scheduling for a job that can run any chain of
  /// `spec`, released `release`.  On admission the reservations are
  /// committed.  Thread-compatible (callers serialize).
  ///
  /// With a ReshapePolicy attached, submission is *elastic*: a promotion
  /// pass first walks demoted jobs back up the quality ladder, and a
  /// rejection triggers a demotion reshape (shrink victims inside one trial
  /// scope, commit only if the newcomer then fits).  Every committed move is
  /// appended to `moves` when non-null.
  [[nodiscard]] sched::AdmissionDecision submit(
      const task::TunableJobSpec& spec, Time release,
      std::vector<QualityMove>* moves = nullptr);

  /// Cancels the remaining (not-yet-started) reservations of a job, freeing
  /// the capacity — the renegotiation hook.  Returns freed processor-ticks.
  /// With a ReshapePolicy attached, freed capacity immediately feeds a
  /// promotion pass (moves appended to `moves` when non-null).
  std::int64_t cancel(std::uint64_t jobId,
                      std::vector<QualityMove>* moves = nullptr);

  /// Changes the machine size at time `when` (>= clock), renegotiating every
  /// live commitment:
  ///  * growing never drops a job (all reservations still fit);
  ///  * shrinking keeps running tasks in place when possible (they are
  ///    non-preemptible), then re-places each affected job's remaining
  ///    tasks — jobs with no started task may switch to a different chain;
  ///  * jobs that cannot be preserved are dropped (their guarantee is lost)
  ///    and reported.
  /// Commitments are re-verified per machine era: `verify()` checks every
  /// era against the capacity that was in force.
  RenegotiationReport resize(int processors, Time when);

  /// Current logical clock (max release time seen).
  [[nodiscard]] Time clock() const { return clock_; }
  [[nodiscard]] int processors() const { return profile_.totalProcessors(); }

  /// Read access for diagnostics and tests.
  [[nodiscard]] const resource::AvailabilityProfile& profile() const {
    return profile_;
  }
  /// Ledger of the current machine era.
  [[nodiscard]] const resource::ReservationLedger& ledger() const {
    return ledger_;
  }
  /// Verifies every commitment made so far, across all machine eras.
  [[nodiscard]] resource::VerificationReport verify() const;

  /// Jobs admitted / rejected so far.
  [[nodiscard]] std::uint64_t admittedCount() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejectedCount() const { return rejected_; }

  /// True while the job holds live (renegotiable) commitments: admitted and
  /// neither finished, cancelled, nor dropped.
  [[nodiscard]] bool live(std::uint64_t jobId) const {
    return live_.count(jobId) != 0;
  }

  /// Id assigned to the most recently submitted job (admitted or not);
  /// nullopt before the first submission.
  [[nodiscard]] std::optional<std::uint64_t> lastJobId() const {
    if (nextJobId_ == 0) return std::nullopt;
    return nextJobId_ - 1;
  }

  /// Attaches (or with nullptr detaches) the full negotiation counter
  /// bundle, wiring the nested profile and heuristic hooks too.  Counters
  /// only observe; attaching cannot change any decision.  Survives resize
  /// (the fresh per-era profile is re-attached).
  void attachMetrics(obs::NegotiationMetrics* metrics);
  [[nodiscard]] obs::NegotiationMetrics* metrics() const { return metrics_; }

  /// Attaches (or with nullptr detaches) the elastic renegotiation policy.
  /// The policy instance must outlive the arbitrator's use of it.
  void attachReshapePolicy(const ReshapePolicy* policy) { policy_ = policy; }
  [[nodiscard]] const ReshapePolicy* reshapePolicy() const { return policy_; }

  /// Not-yet-started live jobs the elastic layer may move.  `demotedOnly`
  /// restricts to jobs below their admitted quality (promotion candidates);
  /// otherwise only jobs with a lower rung to move to are listed (demotion
  /// candidates).  Pinned jobs (gang fragments) are never listed.
  /// Ascending job id (deterministic).
  [[nodiscard]] std::vector<ElasticCandidate> elasticCandidates(
      bool demotedOnly) const;

  // -- Cross-shard gang fragment surface (used by ShardedArbitrator) --------
  //
  // A gang admission places width fragments of one global job on several
  // shards.  Each participating shard goes through a two-phase protocol:
  // phase 1 opens an undo-log Trial and reserves this shard's fragments
  // verbatim (gangReserve); phase 2 either commits them as a *pinned* local
  // job (gangCommit) or rolls the profile back bit-for-bit (gangAbort).
  // While a gang reserve is open no other operation may run on this
  // arbitrator (the sharded wrapper holds every shard lock for the whole
  // protocol).

  /// Phase 1: opens a Trial and reserves `placements`.  Returns false — and
  /// closes the trial, restoring the profile exactly — if any placement does
  /// not fit.  Requires no gang reserve already open.
  [[nodiscard]] bool gangReserve(
      const std::vector<sched::TaskPlacement>& placements);

  /// Phase 2 (success): commits the open reserve and registers the fragments
  /// as one pinned live job on this shard — never demoted, promoted, or
  /// renegotiated; verbatim-or-drop on resize.  `taskIndices[i]` is the spec
  /// task index `placements[i]` is a fragment of (fragments skip tasks the
  /// shard contributes nothing to).  Returns the local job id.
  std::uint64_t gangCommit(const task::TunableJobSpec& spec,
                           std::size_t chainIndex, double quality,
                           Time release,
                           const std::vector<sched::TaskPlacement>& placements,
                           const std::vector<std::size_t>& taskIndices);

  /// Phase 2 (failure): closes the open reserve, rolling every reserved
  /// fragment back bit-for-bit.
  void gangAbort();

  /// True while a phase-1 gang reserve is open (diagnostics, tests).
  [[nodiscard]] bool gangReserveOpen() const { return gangTrial_ != nullptr; }

 private:
  /// Everything needed to renegotiate a job after a resource-level change.
  struct LiveJob {
    task::TunableJobSpec spec;
    Time release = 0;
    std::size_t chainIndex = 0;
    std::vector<sched::TaskPlacement> placements;
    /// Quality of the chain granted at original admission (promotion cap).
    double admittedQuality = 0.0;
    /// Quality of the currently committed chain.
    double currentQuality = 0.0;
    /// Gang fragment: the placements are one shard's share of a cross-shard
    /// job.  Pinned jobs are invisible to the elastic layer and are
    /// verbatim-or-drop on resize (a fragment renegotiated alone would
    /// desynchronise from its siblings on other shards).
    bool pinned = false;
    /// Spec task index of each placement (empty: placement k is task k).
    /// Non-trivial only for gang fragments, whose placements may skip tasks.
    std::vector<std::size_t> taskIndices;
  };

  /// Spec task index of `job.placements[k]`.
  [[nodiscard]] static std::size_t taskIndexOf(const LiveJob& job,
                                               std::size_t k) {
    return job.taskIndices.empty() ? k : job.taskIndices[k];
  }

  /// Retires finished jobs from the live map.
  void retireFinished();
  /// Records a job's placements in the current-era ledger.
  void record(std::uint64_t jobId, std::size_t chainIndex,
              const std::vector<sched::TaskPlacement>& placements,
              std::size_t firstTaskIndex = 0);

  /// True when no placement of the job has started (all movable).
  [[nodiscard]] bool notStarted(const LiveJob& job) const;

  /// Inside an open trial: releases the job's placements and re-admits it
  /// restricted to offered chains with quality in (demote: below current;
  /// promote: above current, at most admittedQuality), deadlines rebased to
  /// the clock.  On success the new reservations are left pending in the
  /// trial and the move is returned; otherwise the trial is rolled back to
  /// the entry savepoint and the job is untouched.
  [[nodiscard]] std::optional<QualityMove> tryMoveInTrial(
      resource::AvailabilityProfile::Trial& trial, std::uint64_t jobId,
      const LiveJob& job, bool promote);

  /// Applies a committed move to the ledger and live map (after trial
  /// commit; the ledger is not undo-logged, so this must not run before).
  void applyMove(const QualityMove& move);

  /// Demotion reshape for a rejected newcomer: consults the policy, shrinks
  /// victims greedily inside one trial, commits only if the newcomer fits.
  [[nodiscard]] sched::AdmissionDecision reshapeAdmit(
      const task::JobInstance& newcomer, std::vector<QualityMove>* moves);

  /// Promotion pass: walks demoted jobs in policy fairness order, restoring
  /// quality where capacity allows (one trial per job, committed per job).
  void promotePass(std::vector<QualityMove>* moves);

  resource::AvailabilityProfile profile_;
  resource::ReservationLedger ledger_;
  std::vector<resource::ReservationLedger> pastEras_;
  sched::GreedyOptions options_;
  sched::GreedyArbitrator heuristic_;
  /// Quality-maximizing heuristic for elastic moves: a demotion lands on the
  /// *best* lower rung and a promotion on the best restorable one.  Kept
  /// separate from `heuristic_` so elastic probes never perturb admission
  /// metrics or the Random chain choice's RNG stream.
  sched::GreedyArbitrator elasticHeuristic_;
  Time clock_ = 0;
  std::uint64_t nextJobId_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::map<std::uint64_t, LiveJob> live_;
  /// Open phase-1 gang reserve (see gangReserve); destruction rolls back.
  std::unique_ptr<resource::AvailabilityProfile::Trial> gangTrial_;
  obs::NegotiationMetrics* metrics_ = nullptr;  // nullable observation hook
  const ReshapePolicy* policy_ = nullptr;       // nullable elastic hook
};

/// Per-application QoS agent: wraps a tunable program, negotiates with the
/// arbitrator, and configures the program along the granted path.
class QoSAgent {
 public:
  /// The agent is generated from the program (in MILAN, by the Calypso
  /// preprocessor; here, from the embedded DSL).
  explicit QoSAgent(tunable::Program& program);

  /// Static negotiation: communicates all paths, returns the allocation (and
  /// configures the program's control parameters) or nullopt on rejection.
  [[nodiscard]] std::optional<Allocation> negotiate(QoSArbitrator& arbitrator,
                                                    Time release);

  /// Runs the program along the negotiated path (task bodies execute with
  /// the bound control parameters).  Requires a successful negotiate().
  void run();

  /// The enumerated paths (diagnostics; recomputed at construction).
  [[nodiscard]] const std::vector<tunable::ExecutionPath>& paths() const {
    return paths_;
  }
  [[nodiscard]] const std::optional<Allocation>& allocation() const {
    return allocation_;
  }

 private:
  tunable::Program* program_;
  std::vector<tunable::ExecutionPath> paths_;
  task::TunableJobSpec jobSpec_;
  std::optional<Allocation> allocation_;
};

}  // namespace tprm::qos
