// Pluggable server→shard command handoff queues.
//
// The negotiation server hands decoded commands from its event loops to the
// per-shard worker threads through one queue per shard.  This seam makes the
// queue implementation swappable (`tprmd --queue={mutex,mpsc,steal}`) while
// preserving the two invariants record→replay decision identity rests on:
//
//   1. Push order per queue == arrivalSeq order.  The server draws the
//      sequence number and pushes under one lock (seqMutex_), so any FIFO
//      queue observes commands in arrivalSeq order regardless of how the
//      push itself synchronises.
//   2. Drain order per queue == push order, and batches are *executed*
//      under the consumer claim.  Whoever drains (the owning worker or, in
//      steal mode, a thief) holds the claim token across both the drain and
//      the execution of the drained batch, so per-shard commands execute in
//      arrivalSeq order even when different threads take turns draining.
//
// Implementations:
//   * MutexCommandQueue  — the original mutex + std::deque + two condition
//     variables (notEmpty for the consumer, notFull for bounded producers).
//     Decision-identical baseline; the only implementation with a truly
//     blocking bounded push.
//   * MpscCommandQueue   — Vyukov-style intrusive linked MPSC queue:
//     producers exchange the head pointer and link with a release store
//     (wait-free, no producer lock); one consumer walks the tail.  A
//     mutex+CV pair is used only to park an idle consumer, never on the
//     push path.
//   * StealCommandQueue  — the same linked-node core operated as a
//     work-stealing intake: the consumer claim token is contended by
//     design, so an idle sibling worker may claim, drain a batch from the
//     FRONT (oldest first — FIFO is preserved), execute it, and release.
//     This replaces lock-coupled donation at the handoff layer: imbalance
//     is absorbed by thieves draining the deepest queue rather than by
//     moving jobs between shards.
//
// closeAndDrain contract (all implementations): close() marks the queue
// closed and wakes every parked consumer AND every blocked producer (the
// shutdown lost-wakeup fix — notifying only notEmpty leaves a producer in
// pushBounded() asleep forever).  Pushes after close() return Closed and
// commit nothing; drains after close() keep returning the remaining items
// until the queue is empty, so nothing admitted is ever lost.  Callers that
// push concurrently with close() must serialise the two externally (the
// server does: close happens under the same lock that guards every push).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tprm::qos {

/// Which handoff queue implementation a server (or harness) runs.
enum class QueueKind { Mutex, Mpsc, Steal };

/// Parses "mutex" / "mpsc" / "steal"; nullopt on anything else.
[[nodiscard]] std::optional<QueueKind> queueKindFromName(
    const std::string& name);
[[nodiscard]] const char* toString(QueueKind kind);

/// Outcome of a push.
enum class QueuePush {
  Ok,            // admitted, depth below capacity
  OkAtCapacity,  // admitted, but depth is now at/above capacity — the
                 // producer should throttle (v1 pause-reads signal)
  Refused,       // not admitted (refuseAtCapacity and the queue is full,
                 // or a bounded push timed out); nothing committed
  Closed,        // queue closed; nothing committed
};

struct QueuePushResult {
  QueuePush status = QueuePush::Ok;
  /// Depth immediately after this push committed (or the depth observed at
  /// refusal).  Sampled before push() returns so gauges see every peak —
  /// a consumer draining whole batches between samples cannot hide one.
  std::size_t depth = 0;
};

/// Wait forever (until an item arrives or the queue closes).
inline constexpr std::chrono::milliseconds kWaitForever{-1};

/// Abstract handoff queue.  Producers call push()/pushBounded() from any
/// thread.  Consumers must hold the claim token around tryDrainUpTo() and
/// around executing what it returned; see the file comment for why.
template <typename T>
class CommandQueue {
 public:
  virtual ~CommandQueue() = default;

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  /// Non-blocking push.  With refuseAtCapacity, a full queue refuses
  /// instead of admitting past capacity (the v2 `busy` discipline); without
  /// it the queue is soft-bounded and reports OkAtCapacity as the throttle
  /// signal (the v1 pause-reads discipline).
  virtual QueuePushResult push(T item, bool refuseAtCapacity) = 0;

  /// Bounded blocking push: waits up to `timeout` (kWaitForever = no
  /// limit) for depth to fall below capacity.  Returns Refused on timeout,
  /// Closed if the queue closes while waiting — close() MUST wake these
  /// waiters (the shutdown lost-wakeup regression).
  virtual QueuePushResult pushBounded(T item,
                                      std::chrono::milliseconds timeout) = 0;

  /// Claims the consumer token; false if another thread holds it.  The
  /// holder is the queue's only legal drainer until releaseConsumer().
  [[nodiscard]] virtual bool tryClaimConsumer() = 0;
  virtual void releaseConsumer() = 0;

  /// Drains up to `max` items FIFO into `out` (appended).  Caller must
  /// hold the consumer claim.  May return 0 with approxDepth() > 0 when a
  /// producer is mid-push (lock-free implementations); callers just poll
  /// again.  After close(), keeps returning the remaining items until
  /// empty.
  virtual std::size_t tryDrainUpTo(std::size_t max, std::vector<T>* out) = 0;

  /// Parks the caller until the queue is (probably) non-empty or closed,
  /// or `timeout` elapses (kWaitForever = no limit).  Spurious returns are
  /// fine; callers re-poll.
  virtual void waitNonEmpty(std::chrono::milliseconds timeout) = 0;

  /// Marks the queue closed and wakes every parked consumer and producer.
  /// Idempotent.  See the closeAndDrain contract above.
  virtual void close() = 0;

  [[nodiscard]] virtual bool closed() const = 0;

  /// Racy depth snapshot (no lock); exact when producers are externally
  /// serialised, which they are in the server (seqMutex_).
  [[nodiscard]] virtual std::size_t approxDepth() const = 0;

  [[nodiscard]] virtual QueueKind kind() const = 0;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 protected:
  explicit CommandQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity_;
};

/// The original handoff queue: one mutex guards a deque, notEmpty wakes the
/// consumer, notFull wakes bounded producers.  Every operation is exact
/// (no approximation windows), which is why it stays the default.
template <typename T>
class MutexCommandQueue final : public CommandQueue<T> {
 public:
  explicit MutexCommandQueue(std::size_t capacity)
      : CommandQueue<T>(capacity) {}

  ~MutexCommandQueue() override = default;

  QueuePushResult push(T item, bool refuseAtCapacity) override {
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return {QueuePush::Closed, items_.size()};
      if (refuseAtCapacity && items_.size() >= this->capacity_) {
        return {QueuePush::Refused, items_.size()};
      }
      items_.push_back(std::move(item));
      depth = items_.size();
      depthMirror_.store(depth, std::memory_order_relaxed);
    }
    notEmpty_.notify_one();
    return {depth >= this->capacity_ ? QueuePush::OkAtCapacity : QueuePush::Ok,
            depth};
  }

  QueuePushResult pushBounded(T item,
                              std::chrono::milliseconds timeout) override {
    std::size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto haveRoom = [&] {
        return closed_ || items_.size() < this->capacity_;
      };
      if (timeout < std::chrono::milliseconds::zero()) {
        notFull_.wait(lock, haveRoom);
      } else if (!notFull_.wait_for(lock, timeout, haveRoom)) {
        return {QueuePush::Refused, items_.size()};
      }
      if (closed_) return {QueuePush::Closed, items_.size()};
      items_.push_back(std::move(item));
      depth = items_.size();
      depthMirror_.store(depth, std::memory_order_relaxed);
    }
    notEmpty_.notify_one();
    return {depth >= this->capacity_ ? QueuePush::OkAtCapacity : QueuePush::Ok,
            depth};
  }

  bool tryClaimConsumer() override {
    bool expected = false;
    return claimed_.compare_exchange_strong(expected, true,
                                            std::memory_order_acquire);
  }

  void releaseConsumer() override {
    claimed_.store(false, std::memory_order_release);
  }

  std::size_t tryDrainUpTo(std::size_t max, std::vector<T>* out) override {
    std::size_t n = 0;
    bool freedRoom = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const bool wasFull = items_.size() >= this->capacity_;
      while (n < max && !items_.empty()) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
      depthMirror_.store(items_.size(), std::memory_order_relaxed);
      freedRoom = wasFull && items_.size() < this->capacity_;
    }
    if (freedRoom) notFull_.notify_all();
    return n;
  }

  void waitNonEmpty(std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [&] { return closed_ || !items_.empty(); };
    if (timeout < std::chrono::milliseconds::zero()) {
      notEmpty_.wait(lock, ready);
    } else {
      notEmpty_.wait_for(lock, timeout, ready);
    }
  }

  void close() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    // Both CVs: a consumer parked on notEmpty AND a producer blocked on the
    // bounded not-full wait must observe the close (the lost-wakeup fix —
    // the old server only ever notified notEmpty).
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  [[nodiscard]] bool closed() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t approxDepth() const override {
    return depthMirror_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] QueueKind kind() const override { return QueueKind::Mutex; }

 private:
  mutable std::mutex mu_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;       // guarded by mu_
  bool closed_ = false;       // guarded by mu_
  std::atomic<std::size_t> depthMirror_{0};
  std::atomic<bool> claimed_{false};
};

namespace detail {

/// Shared linked-node core of the mpsc and steal queues: a Vyukov-style
/// intrusive MPSC list.  Producers are wait-free (one exchange + one
/// release store, no lock, no CAS loop); the claim holder walks the tail.
/// The push path's only synchronisation with a parked consumer is the
/// eventcount-style waiters check, and that takes the park mutex only when
/// a consumer is actually asleep.
template <typename T>
class LinkedCommandQueue : public CommandQueue<T> {
 public:
  ~LinkedCommandQueue() override {
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  QueuePushResult push(T item, bool refuseAtCapacity) override {
    if (closed_.load(std::memory_order_acquire)) {
      return {QueuePush::Closed, depth_.load(std::memory_order_relaxed)};
    }
    if (refuseAtCapacity &&
        depth_.load(std::memory_order_relaxed) >= this->capacity_) {
      return {QueuePush::Refused, depth_.load(std::memory_order_relaxed)};
    }
    Node* node = new Node(std::move(item));
    // Count before linking: a consumer that sees depth > 0 but no linked
    // node knows a push is in flight and re-polls instead of sleeping.
    // seq_cst pairs with the waiter's registration (Dekker: the producer
    // reads waiters_ after writing depth_; the waiter reads depth_ after
    // writing waiters_ — at least one side sees the other).
    const std::size_t depth = depth_.fetch_add(1) + 1;
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    if (waiters_.load() != 0) {
      std::lock_guard<std::mutex> lock(parkMu_);
      parkCv_.notify_all();
    }
    return {depth >= this->capacity_ ? QueuePush::OkAtCapacity : QueuePush::Ok,
            depth};
  }

  QueuePushResult pushBounded(T item,
                              std::chrono::milliseconds timeout) override {
    // Lock-free producers have no not-full CV to sleep on; bounded pushes
    // poll.  Only tests and the harness use this path on these queues —
    // the server never blocks a loop thread on a push.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) {
        return {QueuePush::Closed, depth_.load(std::memory_order_relaxed)};
      }
      if (depth_.load(std::memory_order_relaxed) < this->capacity_) {
        const auto result = push(std::move(item), /*refuseAtCapacity=*/false);
        // A racing producer may have refilled the queue; the item is in
        // regardless, which is the soft-bound contract.
        return result;
      }
      if (timeout >= std::chrono::milliseconds::zero() &&
          std::chrono::steady_clock::now() >= deadline) {
        return {QueuePush::Refused, depth_.load(std::memory_order_relaxed)};
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  bool tryClaimConsumer() override {
    bool expected = false;
    return claimed_.compare_exchange_strong(expected, true,
                                            std::memory_order_acquire);
  }

  void releaseConsumer() override {
    claimed_.store(false, std::memory_order_release);
  }

  std::size_t tryDrainUpTo(std::size_t max, std::vector<T>* out) override {
    std::size_t n = 0;
    while (n < max) {
      Node* next = tail_->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        // Empty — or a producer swung head_ but has not linked yet (the
        // mid-push window).  depth_ tells them apart.
        if (depth_.load() == 0) break;
        bool linked = false;
        for (int spin = 0; spin < 4096 && !linked; ++spin) {
          next = tail_->next.load(std::memory_order_acquire);
          linked = next != nullptr;
          if (!linked && (spin & 63) == 63) std::this_thread::yield();
        }
        if (!linked) break;  // producer preempted mid-push; caller re-polls
      }
      out->push_back(std::move(next->value));
      Node* consumed = tail_;
      tail_ = next;
      delete consumed;
      depth_.fetch_sub(1);
      ++n;
    }
    return n;
  }

  void waitNonEmpty(std::chrono::milliseconds timeout) override {
    if (depth_.load() > 0 || closed_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(parkMu_);
    waiters_.fetch_add(1);
    const auto ready = [&] {
      return depth_.load() > 0 || closed_.load(std::memory_order_acquire);
    };
    if (timeout < std::chrono::milliseconds::zero()) {
      parkCv_.wait(lock, ready);
    } else {
      parkCv_.wait_for(lock, timeout, ready);
    }
    waiters_.fetch_sub(1);
  }

  void close() override {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(parkMu_);
    parkCv_.notify_all();
  }

  [[nodiscard]] bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t approxDepth() const override {
    return depth_.load(std::memory_order_relaxed);
  }

 protected:
  explicit LinkedCommandQueue(std::size_t capacity)
      : CommandQueue<T>(capacity) {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> head_;  // last pushed node; producers exchange
  Node* tail_;               // consumed sentinel; claim holder advances
  std::atomic<std::size_t> depth_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> claimed_{false};

  // Consumer parking only — never touched on an uncontended push.
  std::mutex parkMu_;
  std::condition_variable parkCv_;
  std::atomic<int> waiters_{0};
};

}  // namespace detail

/// Lock-free MPSC intake with a dedicated consumer (the shard's own
/// worker).  The claim token is uncontended in this mode; it exists so the
/// drain discipline is identical across implementations.
template <typename T>
class MpscCommandQueue final : public detail::LinkedCommandQueue<T> {
 public:
  explicit MpscCommandQueue(std::size_t capacity)
      : detail::LinkedCommandQueue<T>(capacity) {}
  [[nodiscard]] QueueKind kind() const override { return QueueKind::Mpsc; }
};

/// The same linked core operated as a work-stealing intake: idle sibling
/// workers contend for the claim token and, when they win it, drain a batch
/// from the front (oldest first) and execute it before releasing.  FIFO per
/// queue — and therefore arrivalSeq execution order per shard — is
/// preserved because execution happens under the claim.
template <typename T>
class StealCommandQueue final : public detail::LinkedCommandQueue<T> {
 public:
  explicit StealCommandQueue(std::size_t capacity)
      : detail::LinkedCommandQueue<T>(capacity) {}
  [[nodiscard]] QueueKind kind() const override { return QueueKind::Steal; }
};

template <typename T>
[[nodiscard]] std::unique_ptr<CommandQueue<T>> makeCommandQueue(
    QueueKind kind, std::size_t capacity) {
  switch (kind) {
    case QueueKind::Mpsc:
      return std::make_unique<MpscCommandQueue<T>>(capacity);
    case QueueKind::Steal:
      return std::make_unique<StealCommandQueue<T>>(capacity);
    case QueueKind::Mutex:
      break;
  }
  return std::make_unique<MutexCommandQueue<T>>(capacity);
}

}  // namespace tprm::qos
