#include "qos/command_queue.h"

namespace tprm::qos {

std::optional<QueueKind> queueKindFromName(const std::string& name) {
  if (name == "mutex") return QueueKind::Mutex;
  if (name == "mpsc") return QueueKind::Mpsc;
  if (name == "steal") return QueueKind::Steal;
  return std::nullopt;
}

const char* toString(QueueKind kind) {
  switch (kind) {
    case QueueKind::Mutex:
      return "mutex";
    case QueueKind::Mpsc:
      return "mpsc";
    case QueueKind::Steal:
      return "steal";
  }
  return "mutex";
}

}  // namespace tprm::qos
