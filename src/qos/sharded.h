// Sharded admission: K independent QoSArbitrators, each owning a static
// partition of the processor pool.
//
// One arbitrator on one decision thread caps negotiation throughput — every
// admission walks one global availability profile.  Dynamic-resizing
// schedulers (ReSHAPE, the SLURM dynamic-resource extension) scale admission
// by partitioning the machine among cooperating scheduler instances, and the
// same shape works here because the paper's arbitrator is already
// partition-friendly: a job's guarantee only ever depends on the profile it
// was admitted against.
//
// Three mechanisms on top of the plain partition:
//  * routing — a job's *home* shard is `jobId % K`, so a deterministic id
//    assignment (the service stamps ids in arrival order) gives a
//    deterministic route;
//  * spill — a job its home shard rejects is offered to the shard with the
//    most free area before final rejection, recovering most of the admission
//    rate a partition would otherwise lose to fragmentation;
//  * rebalance — a periodic sweep moves whole processors from the most-idle
//    shard to the busiest one through the existing resize() hook, never
//    dropping a commitment (the donor only gives up processors that are idle
//    from now on);
//  * gang (opt-in) — a job no single shard's partition could ever hold is
//    placed as width fragments on several shards under a two-phase trial
//    reserve: phase 1 reserves each fragment under its shard's undo-log
//    Trial scope (shards visited in index order — the same total order every
//    multi-shard path uses, so the protocol is deadlock-free without a
//    global lock), phase 2 commits all fragments or rolls every one back
//    bit-for-bit.  Fragments are pinned on their shards and tracked in a
//    gang binding table: cancel releases all of them, resize treats them
//    verbatim-or-drop (dropping one cancels the siblings), and the elastic
//    layer never demotes or promotes a fragment independently.
//
// With K=1 every operation forwards to the single QoSArbitrator with the
// same ids, clocks, and counters — byte-identical decisions to the unsharded
// arbitrator (the service's replay-equivalence tests pin this).
//
// Thread-safe: each shard has its own lock; submit/cancel lock one shard at
// a time, resize/rebalance/verify lock all shards in index order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qos/qos.h"

namespace tprm::obs {
struct ShardedMetrics;  // obs/metrics.h; nullable observation hook
}  // namespace tprm::obs

namespace tprm::qos {

struct ShardedOptions {
  /// Number of independent arbitrator shards (>= 1).
  int shards = 1;
  /// Admission heuristic configuration shared by every shard.
  sched::GreedyOptions greedy = {};
  /// Offer home-shard rejections to the emptiest other shard before finally
  /// rejecting.  Off, the shards are fully independent (and per-shard replay
  /// is exact) at the cost of admission rate.
  bool spill = true;
  /// Free-area window used to pick the spill target, from the job's release.
  Time spillHorizon = 256 * kTicksPerUnit;
  /// rebalance() moves processors only when the most-idle and least-idle
  /// shards differ by at least this many always-free processors.
  int rebalanceThreshold = 2;
  /// Cross-shard gang admission: when home and spill both reject and no
  /// chain of the spec fits any single shard's partition by width, place one
  /// chain as width fragments on several shards under a two-phase trial
  /// reserve — every fragment commits or every fragment rolls back
  /// bit-for-bit.  Only engages with shards > 1, so K=1 decisions stay
  /// byte-identical to the unsharded arbitrator.
  bool gang = false;
};

/// Outcome of one rebalance() sweep.
struct ShardRebalanceReport {
  bool moved = false;
  int fromShard = -1;
  int toShard = -1;
  /// Whole processors moved (0 unless `moved`).
  int processors = 0;
  /// The single instant both shards resized at — the later of the sweep
  /// time and both shard clocks (0 unless `moved`).  Resizing the donor and
  /// the receiver at one common time is what keeps machine-wide capacity
  /// from transiently dipping below the total.
  Time at = 0;
  /// Idle processors (free from `when` on) of the extreme shards observed.
  int maxIdle = 0;
  int minIdle = 0;
};

/// K independent QoSArbitrator shards behind the QoSArbitrator surface,
/// plus spill and rebalance.  Job ids are global; each shard numbers its own
/// jobs locally and the wrapper keeps the translation.
class ShardedArbitrator {
 public:
  /// Partitions `processors` across `options.shards` shards (first
  /// `processors % shards` shards get the extra one).  Requires at least one
  /// processor per shard.
  explicit ShardedArbitrator(int processors, ShardedOptions options = {});

  [[nodiscard]] int shardCount() const {
    return static_cast<int>(shards_.size());
  }
  /// Current total machine size (sum over shards; rebalance preserves it).
  [[nodiscard]] int processors() const;
  /// Current per-shard machine sizes.
  [[nodiscard]] std::vector<int> shardProcessors() const;

  /// Global logical clock: max release/resize time seen by any operation.
  /// Shard clocks trail it (each shard only sees its own traffic), so
  /// operations clamp to the target shard's clock on entry.
  [[nodiscard]] Time clock() const {
    return clock_.load(std::memory_order_acquire);
  }

  /// Draws the next global job id.  The service reserves ids at enqueue time
  /// (in arrival order) so that the id — and therefore the home shard — of a
  /// negotiation is fixed before it is queued.
  [[nodiscard]] std::uint64_t reserveJobId() {
    return nextJobId_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Next id reserveJobId() would return.
  [[nodiscard]] std::uint64_t peekNextJobId() const {
    return nextJobId_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::optional<std::uint64_t> lastJobId() const {
    const auto next = nextJobId_.load(std::memory_order_relaxed);
    if (next == 0) return std::nullopt;
    return next - 1;
  }
  /// Home shard of a job id.
  [[nodiscard]] int homeShard(std::uint64_t jobId) const {
    return static_cast<int>(jobId % shards_.size());
  }

  /// Admission for a pre-reserved global id: tries the home shard, then (if
  /// enabled) spills to the shard with the most free area.  `release` is
  /// clamped to the target shard's clock; the value actually used is
  /// returned through `effectiveRelease` when non-null.
  ///
  /// With a ReshapePolicy attached (attachReshapePolicy), each shard submit
  /// is elastic: the home shard promotes/demotes under its own lock before
  /// the spill scan ever runs, and the spill shard does the same before the
  /// final rejection.  Committed moves are appended to `moves` (global job
  /// ids) when non-null.
  [[nodiscard]] sched::AdmissionDecision submit(
      std::uint64_t jobId, const task::TunableJobSpec& spec, Time release,
      Time* effectiveRelease = nullptr,
      std::vector<QualityMove>* moves = nullptr);
  /// Convenience overload that reserves the id itself (see lastJobId()).
  [[nodiscard]] sched::AdmissionDecision submit(
      const task::TunableJobSpec& spec, Time release) {
    return submit(reserveJobId(), spec, release);
  }

  /// Cancels a job by global id wherever it was admitted.  Returns freed
  /// processor-ticks (0 for unknown/finished jobs, as unsharded).  With a
  /// ReshapePolicy attached, freed capacity feeds the owning shard's
  /// promotion pass (moves appended with global ids when non-null).
  std::int64_t cancel(std::uint64_t jobId,
                      std::vector<QualityMove>* moves = nullptr);

  /// Attaches (or with nullptr detaches) the elastic renegotiation policy on
  /// every shard.  The policy must be thread-safe: shards consult it
  /// concurrently, each under its own lock.  With K=1 the behavior is
  /// byte-identical to a single QoSArbitrator with the same policy.
  void attachReshapePolicy(const ReshapePolicy* policy);

  /// Resizes the whole machine: splits `processors` evenly across shards and
  /// renegotiates each shard.  Reports global job ids.  Requires
  /// `processors >= shardCount()`.
  RenegotiationReport resize(int processors, Time when);

  /// One rebalance sweep at time `when`: if the always-idle gap between the
  /// extreme shards reaches the threshold, moves half the gap (whole
  /// processors, donor keeps >= 1) from the most-idle to the least-idle
  /// shard.  Never drops a commitment.
  ShardRebalanceReport rebalance(Time when);

  /// Verifies every shard's commitments (all machine eras).
  [[nodiscard]] resource::VerificationReport verify() const;

  /// Global job outcomes (a spilled admission counts once, for the job).
  [[nodiscard]] std::uint64_t admittedCount() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejectedCount() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Jobs admitted by a shard other than their home shard.
  [[nodiscard]] std::uint64_t spillCount() const {
    return spills_.load(std::memory_order_relaxed);
  }

  /// Number of live gang-admitted jobs (diagnostics, tests).
  [[nodiscard]] std::size_t gangCount() const {
    std::lock_guard<std::mutex> lock(mapMutex_);
    return gangs_.size();
  }
  /// Gang jobs admitted so far.
  [[nodiscard]] std::uint64_t gangAdmittedCount() const {
    return gangAdmitted_.load(std::memory_order_relaxed);
  }
  /// True while `jobId` is a live gang-admitted job.
  [[nodiscard]] bool isGangJob(std::uint64_t jobId) const {
    std::lock_guard<std::mutex> lock(mapMutex_);
    return gangs_.count(jobId) != 0;
  }

  /// Test-only race seams, all invoked with no shard lock held: the spill
  /// seam fires between the spill scoring scan and the candidate submit; the
  /// rebalance seam fires between the rebalance clock advance and the
  /// all-shard lock acquisition; the cancel seam fires between the
  /// jobToShard map read and the shard lock acquisition.  They
  /// deterministically reproduce the score->submit, clock->lock and
  /// read->lock interleavings the regression tests pin.
  /// A seam that re-enters this arbitrator must not recurse into its own
  /// trigger (e.g. a spill seam should only submit jobs their home shard
  /// admits).  Production callers leave them unset (zero cost).
  void setSpillRaceSeamForTest(std::function<void()> seam) {
    spillRaceSeam_ = std::move(seam);
  }
  void setRebalanceRaceSeamForTest(std::function<void()> seam) {
    rebalanceRaceSeam_ = std::move(seam);
  }
  void setCancelRaceSeamForTest(std::function<void()> seam) {
    cancelRaceSeam_ = std::move(seam);
  }

  /// Per-shard negotiation counters plus the cross-shard bundle.
  /// `perShard` must be empty (detach) or hold shardCount() entries.  Note
  /// shard counters count *local* admission attempts: a spilled job shows up
  /// as a rejection on its home shard and an admission on the spill shard.
  void attachMetrics(std::vector<obs::NegotiationMetrics*> perShard,
                     obs::ShardedMetrics* sharded);

  /// Read access to one shard for diagnostics and tests.  The reference is
  /// only safe to use while no other thread operates on the arbitrator.
  [[nodiscard]] const QoSArbitrator& shard(int k) const {
    return shards_[static_cast<std::size_t>(k)]->arb;
  }

 private:
  struct Shard {
    explicit Shard(int processors, sched::GreedyOptions options)
        : arb(processors, options) {}
    mutable std::mutex mu;
    QoSArbitrator arb;
    /// Local job id -> global job id, for live jobs of this shard.
    std::unordered_map<std::uint64_t, std::uint64_t> toGlobal;
  };

  /// Advances the global clock to at least `t`; returns the new value.
  Time advanceClock(Time t);
  /// Rewrites shard-local move ids to global ids and appends to `out`.
  /// Caller holds the shard's lock.
  static void appendGlobalMoves(const Shard& shard,
                                std::vector<QualityMove> local,
                                std::vector<QualityMove>& out);
  /// Registers a global<->local id binding.  Caller holds the shard's lock.
  void bindJob(std::uint64_t globalId, int shard, std::uint64_t localId);
  /// Locks every shard in index order.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> lockAll() const;
  /// Narrowest chain of the spec, by widest task.  A shard with fewer
  /// processors than this can never admit the job.
  static int minChainWidth(const task::TunableJobSpec& spec);
  /// Cross-shard gang admission: plans the best chain as width fragments
  /// over all shards, then two-phase reserves/commits it (all locks taken
  /// in index order for the whole protocol).  Returns a rejection when the
  /// spec is not gang-eligible or no chain fits machine-wide.
  [[nodiscard]] sched::AdmissionDecision gangSubmit(
      std::uint64_t jobId, const task::TunableJobSpec& spec, Time release,
      Time* effectiveRelease);

  ShardedOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<Time> clock_{0};
  std::atomic<std::uint64_t> nextJobId_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<std::uint64_t> gangAdmitted_{0};
  /// Global job id -> (shard, local id), for live jobs.
  mutable std::mutex mapMutex_;
  std::unordered_map<std::uint64_t, std::pair<int, std::uint64_t>> toLocal_;
  /// Gang binding table: global job id -> every (shard, local id) fragment,
  /// in shard index order.  cancel/resize treat the members as one job — a
  /// fragment is never cancelled, renegotiated, or rebalanced independently.
  /// Guarded by mapMutex_.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<int, std::uint64_t>>>
      gangs_;
  std::function<void()> spillRaceSeam_;      // test-only, see setter
  std::function<void()> rebalanceRaceSeam_;  // test-only, see setter
  std::function<void()> cancelRaceSeam_;     // test-only, see setter
  obs::ShardedMetrics* shardedMetrics_ = nullptr;  // nullable observation hook
};

}  // namespace tprm::qos
