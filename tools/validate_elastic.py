#!/usr/bin/env python3
"""Validate an elastic-ablation artifact against docs/elastic_schema.json.

Stdlib-only.  Schema checking reuses validate_metrics.py's implementation of
the JSON Schema subset (type, required, properties, additionalProperties,
items, minimum, enum), then adds the cross-field invariants a schema cannot
express:

  * every leg satisfies admitted + rejected == jobs and
    on_time_throughput == admitted / jobs (to float round-trip precision);
  * decision_fingerprint is a 16-hex-digit string;
  * static legs report zero demotions and promotions (no policy attached);
  * no leg reports quality-floor violations, and dominance.floors_clean
    agrees with the per-leg counters;
  * every (scenario, load) pair carries exactly one static and one dynamic
    leg, and all four canonical scenario families appear;
  * dominance.families_dominant matches a recount of the high-load legs
    (dynamic admitted strictly greater than static admitted), and
    dominance.ok agrees with families_dominant >= required;
  * the headline claim holds: dominance.ok and dominance.floors_clean.

Usage:
    tools/validate_elastic.py BENCH_elastic.json \
        [--schema docs/elastic_schema.json]

Exit status: 0 when the document validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from validate_metrics import validate  # noqa: E402

_CANONICAL_KINDS = {"diurnal", "flash-crowd", "heavy-tailed", "multi-tenant"}


def _semantic_errors(document) -> list[str]:
    errors: list[str] = []
    kinds_seen: set[str] = set()
    floors_dirty = False
    by_pair: dict[tuple[str, float], dict[str, dict]] = {}
    for index, leg in enumerate(document.get("legs", [])):
        path = f"$.legs[{index}]"
        kinds_seen.add(leg.get("scenario", ""))
        jobs = leg.get("jobs", 0)
        admitted = leg.get("admitted", 0)
        rejected = leg.get("rejected", 0)
        if admitted + rejected != jobs:
            errors.append(
                f"{path}: admitted ({admitted}) + rejected ({rejected}) "
                f"!= jobs ({jobs})"
            )
        throughput = leg.get("on_time_throughput", 0.0)
        if jobs and abs(throughput - admitted / jobs) > 1e-9:
            errors.append(
                f"{path}: on_time_throughput {throughput} inconsistent with "
                f"admitted/jobs = {admitted / jobs}"
            )
        fingerprint = leg.get("decision_fingerprint", "")
        if len(fingerprint) != 16 or any(
            c not in "0123456789abcdef" for c in fingerprint
        ):
            errors.append(
                f"{path}: decision_fingerprint {fingerprint!r} is not 16 "
                "lowercase hex digits"
            )
        if leg.get("mode") == "static" and (
            leg.get("demotions", 0) != 0 or leg.get("promotions", 0) != 0
        ):
            errors.append(
                f"{path}: static leg reports reshaping "
                f"({leg.get('demotions')} demotions, "
                f"{leg.get('promotions')} promotions) with no policy attached"
            )
        if leg.get("floor_violations", 0) != 0:
            floors_dirty = True
            errors.append(
                f"{path}: {leg['floor_violations']} quality-floor violations "
                "(demotion may only land on chains the job itself offered, "
                "so any violation is a reshape bug)"
            )
        pair = by_pair.setdefault(
            (leg.get("scenario", ""), leg.get("load", 0.0)), {}
        )
        mode = leg.get("mode", "")
        if mode in pair:
            errors.append(f"{path}: duplicate {mode} leg for {pair}")
        pair[mode] = leg

    for (scenario, load), modes in sorted(by_pair.items()):
        if set(modes) != {"static", "dynamic"}:
            errors.append(
                f"$.legs: ({scenario}, load={load}) has modes "
                f"{sorted(modes)}, expected one static and one dynamic leg"
            )
    missing = _CANONICAL_KINDS - kinds_seen
    if missing:
        errors.append(f"$.legs: missing canonical kind(s): {sorted(missing)}")

    dominance = document.get("dominance", {})
    high_load = document.get("high_load", 0.0)
    recount = 0
    for scenario in sorted({scenario for scenario, _ in by_pair}):
        modes = by_pair.get((scenario, high_load), {})
        if "static" in modes and "dynamic" in modes and (
            modes["dynamic"].get("admitted", 0)
            > modes["static"].get("admitted", 0)
        ):
            recount += 1
    if dominance.get("families_dominant") != recount:
        errors.append(
            f"$.dominance: families_dominant "
            f"{dominance.get('families_dominant')} disagrees with a recount "
            f"of the load={high_load} legs ({recount})"
        )
    expected_ok = recount >= dominance.get("required", 0)
    if dominance.get("ok") != expected_ok:
        errors.append(
            f"$.dominance: ok={dominance.get('ok')} inconsistent with "
            f"families_dominant >= required ({expected_ok})"
        )
    if dominance.get("floors_clean") != (not floors_dirty):
        errors.append(
            f"$.dominance: floors_clean={dominance.get('floors_clean')} "
            f"disagrees with the per-leg floor_violations counters"
        )
    if not dominance.get("ok"):
        errors.append(
            "$.dominance: dynamic does not dominate static on enough "
            "families — the tentpole claim fails"
        )
    if not dominance.get("floors_clean"):
        errors.append("$.dominance: floors_clean is false")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", type=pathlib.Path)
    parser.add_argument(
        "--schema",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "docs"
        / "elastic_schema.json",
    )
    args = parser.parse_args()

    schema = json.loads(args.schema.read_text())
    document = json.loads(args.artifact.read_text())
    errors = validate(document, schema)
    # Cross-field checks assume the shape is right; skip them if it isn't.
    if not errors:
        errors = _semantic_errors(document)
    for error in errors:
        print(f"{args.artifact}: {error}", file=sys.stderr)
    if errors:
        print(f"FAIL: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    legs = len(document.get("legs", []))
    dominant = document.get("dominance", {}).get("families_dominant", 0)
    print(
        f"OK: {legs} leg(s) match {args.schema}; dynamic dominates static "
        f"in {dominant} family(ies) at high load with clean floors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
