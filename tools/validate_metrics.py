#!/usr/bin/env python3
"""Validate an observability snapshot against docs/metrics_schema.json.

Stdlib-only implementation of the JSON Schema subset the checked-in schema
uses: type, required, properties, additionalProperties, items, minimum, enum.
Keys starting with "$" are treated as annotations and ignored.

Usage:
    tools/validate_metrics.py SNAPSHOT.json [--schema docs/metrics_schema.json]

The snapshot file may be a single JSON document or JSON-lines (as written by
`tprmd --metrics-out`); with JSON-lines every line is validated.

Beyond the schema, cross-counter invariants of the sharded.* family are
checked: spill_admitted <= spill_attempts (an attempt is a candidate submit
that actually ran; spill_no_candidate counts scans that skipped the submit),
gang_admitted <= gang_attempts, and gang_fragments_placed >= 2 *
gang_admitted (a gang spans at least two shards by construction).

Exit status: 0 when every document validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "integer": int,
}


def _type_ok(value, expected: str) -> bool:
    if expected == "integer":
        # JSON has no integer type; accept whole-valued floats (histogram
        # counts round-trip through double in the C++ JSON layer).
        if isinstance(value, bool):
            return False
        return isinstance(value, int) or (
            isinstance(value, float) and value.is_integer()
        )
    if expected == "number":
        return not isinstance(value, bool) and isinstance(value, (int, float))
    python_type = _TYPES[expected]
    if expected != "boolean" and isinstance(value, bool):
        return False
    return isinstance(value, python_type)


def validate(value, schema: dict, path: str = "$") -> list[str]:
    """Returns a list of human-readable violations (empty when valid)."""
    errors: list[str] = []

    expected_type = schema.get("type")
    if expected_type is not None and not _type_ok(value, expected_type):
        return [f"{path}: expected {expected_type}, got {type(value).__name__}"]

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(
        value, bool
    ):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            child_path = f"{path}.{key}"
            if key in properties:
                errors.extend(validate(item, properties[key], child_path))
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(item, additional, child_path))

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{index}]"))

    return errors


def _counter_errors(document) -> list[str]:
    """Cross-counter invariants the schema cannot express."""
    counters = document.get("counters")
    if not isinstance(counters, dict):
        return []
    errors: list[str] = []

    def check(lower: str, upper: str, scale: int = 1) -> None:
        if lower in counters and upper in counters:
            if counters[upper] * scale < counters[lower]:
                errors.append(
                    f"$.counters: {lower} ({counters[lower]}) exceeds "
                    f"{scale} * {upper} ({counters[upper]})"
                )

    check("sharded.spill_admitted", "sharded.spill_attempts")
    check("sharded.gang_admitted", "sharded.gang_attempts")
    # Every committed gang spans >= 2 shards, so fragments >= 2 * gangs.
    if (
        "sharded.gang_fragments_placed" in counters
        and "sharded.gang_admitted" in counters
        and counters["sharded.gang_fragments_placed"]
        < 2 * counters["sharded.gang_admitted"]
    ):
        errors.append(
            "$.counters: sharded.gang_fragments_placed "
            f"({counters['sharded.gang_fragments_placed']}) below 2 * "
            f"sharded.gang_admitted ({counters['sharded.gang_admitted']})"
        )
    return errors


def _documents(text: str):
    """Yields (label, parsed) for a single document or JSON-lines input."""
    stripped = text.strip()
    if not stripped:
        raise ValueError("empty input")
    try:
        yield "document", json.loads(stripped)
        return
    except json.JSONDecodeError:
        pass  # fall through to JSON-lines
    for number, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if line:
            yield f"line {number}", json.loads(line)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", type=pathlib.Path)
    parser.add_argument(
        "--schema",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "docs"
        / "metrics_schema.json",
    )
    args = parser.parse_args()

    schema = json.loads(args.schema.read_text())
    failures = 0
    checked = 0
    for label, document in _documents(args.snapshot.read_text()):
        checked += 1
        errors = validate(document, schema)
        if not errors:
            errors = _counter_errors(document)
        for error in errors:
            print(f"{args.snapshot}:{label}: {error}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"FAIL: {failures} violation(s) across {checked} document(s)",
              file=sys.stderr)
        return 1
    print(f"OK: {checked} document(s) match {args.schema}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
