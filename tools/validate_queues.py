#!/usr/bin/env python3
"""Validate a queue-harness artifact against docs/queues_schema.json.

Stdlib-only.  Schema checking reuses validate_metrics.py's implementation of
the JSON Schema subset (type, required, properties, additionalProperties,
items, minimum, enum), then adds the cross-field invariants a schema cannot
express:

  * correctness is non-negotiable: every row (contention and imbalance)
    reports lost == 0 and fifo_violations == 0;
  * every contention row's consumed equals producers * ops_per_producer;
  * quantiles are ordered: p50 <= p95 <= p99 <= max per row;
  * every requested kind appears in both trial families, and the three
    canonical kinds (mutex, mpsc, steal) are all present unless --kinds
    narrowed the sweep (pass --allow-partial for such smoke artifacts);
  * only steal rows may report stolen_batches > 0;
  * the comparison block, when present, matches the rows it summarizes.

The acceptance criterion (mpsc p99 < mutex p99 at >= 4 producers) is
*recorded*, not gated: single-core CI boxes serialize producers and may
legitimately show parity, per the PR 7 note.

Usage:
    tools/validate_queues.py BENCH_queues.json \
        [--schema docs/queues_schema.json] [--allow-partial]

Exit status: 0 when the document validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from validate_metrics import validate  # noqa: E402

_CANONICAL_KINDS = {"mutex", "mpsc", "steal"}


def _quantile_errors(path: str, row: dict, prefix: str) -> list[str]:
    p50 = row.get(f"{prefix}_p50", 0)
    p95 = row.get(f"{prefix}_p95", p50)
    p99 = row.get(f"{prefix}_p99", p95)
    top = row.get(f"{prefix}_max", p99)
    if not (p50 <= p95 <= p99 <= top):
        return [
            f"{path}: {prefix} quantiles out of order "
            f"(p50={p50}, p95={p95}, p99={p99}, max={top})"
        ]
    return []


def _semantic_errors(document, allow_partial: bool) -> list[str]:
    errors: list[str] = []
    row_kinds: set[str] = set()
    for index, row in enumerate(document.get("rows", [])):
        path = f"$.rows[{index}]"
        row_kinds.add(row.get("kind", ""))
        if row.get("lost", 0) != 0:
            errors.append(f"{path}: lost {row['lost']} item(s)")
        if row.get("fifo_violations", 0) != 0:
            errors.append(
                f"{path}: {row['fifo_violations']} FIFO-per-producer "
                "violation(s)"
            )
        expected = row.get("producers", 0) * row.get("ops_per_producer", 0)
        if row.get("consumed", 0) != expected:
            errors.append(
                f"{path}: consumed {row.get('consumed')} != "
                f"producers * ops = {expected}"
            )
        errors.extend(_quantile_errors(path, row, "push_ns"))

    imbalance_kinds: set[str] = set()
    for index, row in enumerate(document.get("imbalance", [])):
        path = f"$.imbalance[{index}]"
        imbalance_kinds.add(row.get("kind", ""))
        if row.get("lost", 0) != 0:
            errors.append(f"{path}: lost {row['lost']} item(s)")
        if row.get("fifo_violations", 0) != 0:
            errors.append(
                f"{path}: {row['fifo_violations']} FIFO-per-producer "
                "violation(s)"
            )
        if row.get("kind") != "steal" and row.get("stolen_batches", 0) != 0:
            errors.append(
                f"{path}: non-steal kind reports "
                f"{row['stolen_batches']} stolen batch(es)"
            )

    if not allow_partial:
        for family, kinds in (("rows", row_kinds), ("imbalance", imbalance_kinds)):
            missing = _CANONICAL_KINDS - kinds
            if missing:
                errors.append(
                    f"$.{family}: missing canonical kind(s): {sorted(missing)}"
                )
    if row_kinds != imbalance_kinds:
        errors.append(
            "$: rows and imbalance cover different kinds "
            f"({sorted(row_kinds)} vs {sorted(imbalance_kinds)})"
        )

    comparison = document.get("comparison")
    if comparison is not None:
        probe = comparison.get("producers")
        for kind, key in (("mutex", "mutex_push_p99_ns"),
                          ("mpsc", "mpsc_push_p99_ns")):
            match = [
                row
                for row in document.get("rows", [])
                if row.get("kind") == kind and row.get("producers") == probe
            ]
            if not match:
                errors.append(
                    f"$.comparison: no {kind} row at producers={probe}"
                )
            elif abs(match[0].get("push_ns_p99", -1) - comparison.get(key, -2)) > 1e-9:
                errors.append(
                    f"$.comparison: {key} ({comparison.get(key)}) does not "
                    f"match the {kind} row's push_ns_p99 "
                    f"({match[0].get('push_ns_p99')})"
                )
        expected_flag = (
            comparison.get("mpsc_push_p99_ns", 0)
            < comparison.get("mutex_push_p99_ns", 0)
        )
        if comparison.get("mpsc_beats_mutex_p99") != expected_flag:
            errors.append(
                "$.comparison: mpsc_beats_mutex_p99 flag inconsistent with "
                "the recorded p99 values"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", type=pathlib.Path)
    parser.add_argument(
        "--schema",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "docs"
        / "queues_schema.json",
    )
    parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="accept artifacts that swept a subset of the canonical kinds",
    )
    args = parser.parse_args()

    schema = json.loads(args.schema.read_text())
    document = json.loads(args.artifact.read_text())
    errors = validate(document, schema)
    # Cross-field checks assume the shape is right; skip them if it isn't.
    if not errors:
        errors = _semantic_errors(document, args.allow_partial)
    for error in errors:
        print(f"{args.artifact}: {error}", file=sys.stderr)
    if errors:
        print(f"FAIL: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    rows = len(document.get("rows", []))
    imbalance = len(document.get("imbalance", []))
    print(
        f"OK: {rows} contention row(s) + {imbalance} imbalance row(s) "
        f"match {args.schema}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
