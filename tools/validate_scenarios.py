#!/usr/bin/env python3
"""Validate a scenario-suite artifact against docs/scenarios_schema.json.

Stdlib-only.  Schema checking reuses validate_metrics.py's implementation of
the JSON Schema subset (type, required, properties, additionalProperties,
items, minimum, enum), then adds the cross-field invariants a schema cannot
express:

  * every scenario leg satisfies admitted + rejected == jobs;
  * on_time_throughput == admitted / jobs (to float round-trip precision);
  * decision_fingerprint is a 16-hex-digit string;
  * per-tenant counters are consistent (admitted <= offered, offered sums
    to the leg's job count) and no leg reports quality-floor violations;
  * gang fields are consistent: gang_admitted only appears on gang legs,
    never exceeds admitted, and when the artifact was produced with --gang
    every canonical kind has a shards >= 8 leg (the K=8 sweep row);
  * all four canonical scenario kinds are present.

Usage:
    tools/validate_scenarios.py BENCH_scenarios.json \
        [--schema docs/scenarios_schema.json]

Exit status: 0 when the document validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from validate_metrics import validate  # noqa: E402

_CANONICAL_KINDS = {"diurnal", "flash-crowd", "heavy-tailed", "multi-tenant"}


def _semantic_errors(document) -> list[str]:
    errors: list[str] = []
    kinds_seen: set[str] = set()
    wide_kinds: set[str] = set()  # kinds with a shards >= 8 leg
    for index, leg in enumerate(document.get("scenarios", [])):
        path = f"$.scenarios[{index}]"
        kinds_seen.add(leg.get("kind", ""))
        if leg.get("shards", 0) >= 8:
            wide_kinds.add(leg.get("kind", ""))
        jobs = leg.get("jobs", 0)
        admitted = leg.get("admitted", 0)
        rejected = leg.get("rejected", 0)
        if admitted + rejected != jobs:
            errors.append(
                f"{path}: admitted ({admitted}) + rejected ({rejected}) "
                f"!= jobs ({jobs})"
            )
        throughput = leg.get("on_time_throughput", 0.0)
        if jobs and abs(throughput - admitted / jobs) > 1e-9:
            errors.append(
                f"{path}: on_time_throughput {throughput} inconsistent with "
                f"admitted/jobs = {admitted / jobs}"
            )
        fingerprint = leg.get("decision_fingerprint", "")
        if len(fingerprint) != 16 or any(
            c not in "0123456789abcdef" for c in fingerprint
        ):
            errors.append(
                f"{path}: decision_fingerprint {fingerprint!r} is not 16 "
                "lowercase hex digits"
            )
        if leg.get("floor_violations", 0) != 0:
            errors.append(
                f"{path}: {leg['floor_violations']} quality-floor violations "
                "(the generator offers only floor-respecting chains, so any "
                "violation is an admission bug)"
            )
        tenants = leg.get("tenants")
        if tenants is not None:
            offered_total = 0
            for tenant in tenants:
                tenant_path = f"{path}.tenants[{tenant.get('name', '?')}]"
                offered_total += tenant.get("offered", 0)
                if tenant.get("admitted", 0) > tenant.get("offered", 0):
                    errors.append(
                        f"{tenant_path}: admitted ({tenant.get('admitted')}) "
                        f"exceeds offered ({tenant.get('offered')})"
                    )
            if offered_total != jobs:
                errors.append(
                    f"{path}: per-tenant offered sums to {offered_total}, "
                    f"expected {jobs}"
                )
        gang_admitted = leg.get("gang_admitted")
        if gang_admitted is not None and not leg.get("gang", False):
            errors.append(
                f"{path}: gang_admitted present on a non-gang leg"
            )
        if gang_admitted is not None and gang_admitted > admitted:
            errors.append(
                f"{path}: gang_admitted ({gang_admitted}) exceeds "
                f"admitted ({admitted})"
            )
    missing = _CANONICAL_KINDS - kinds_seen
    if missing:
        errors.append(
            f"$.scenarios: missing canonical kind(s): {sorted(missing)}"
        )
    if document.get("gang", False):
        missing_wide = _CANONICAL_KINDS - wide_kinds
        if missing_wide:
            errors.append(
                "$.scenarios: --gang artifact lacks a shards >= 8 leg for "
                f"kind(s): {sorted(missing_wide)}"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", type=pathlib.Path)
    parser.add_argument(
        "--schema",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "docs"
        / "scenarios_schema.json",
    )
    args = parser.parse_args()

    schema = json.loads(args.schema.read_text())
    document = json.loads(args.artifact.read_text())
    errors = validate(document, schema)
    # Cross-field checks assume the shape is right; skip them if it isn't.
    if not errors:
        errors = _semantic_errors(document)
    for error in errors:
        print(f"{args.artifact}: {error}", file=sys.stderr)
    if errors:
        print(f"FAIL: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    legs = len(document.get("scenarios", []))
    print(f"OK: {legs} scenario leg(s) match {args.schema}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
