// tprm_replay — record/replay driver for tprmd wire traces.
//
// Modes (pick one):
//
//   --gen=NAME --out=FILE [--jobs=N] [--seed=S]
//       Synthesize a trace from a canonical scenario (workload/scenario.h):
//       one NEGOTIATE record per generated job, in release order, pacing
//       deltas derived from the release gaps.
//
//   --in=FILE --cat
//       Dump the trace, one line per record.
//
//   --in=FILE [--procs=P] [--shards=K] [--no-spill] [--gang]
//       Replay the trace sequentially into a fresh in-process
//       ShardedArbitrator and print the decision summary + fingerprint.
//       --gang enables cross-shard gang admission (shards > 1).
//
//   --elastic[=POLICY]  (combines with every replay mode)
//       Attach the elastic Reshaper (min-quality-loss | most-recent-first |
//       proportional-share) to the replay arbitrator and/or the driven
//       daemon.  Reshape moves join the decision stream: the fingerprint
//       covers them, and --drive checks move-for-move identity (daemon
//       moves are collected by polling RESHAPES after each mutation).
//
//   --in=FILE --unix=PATH | --in=FILE --tcp-port=PORT
//       Replay the trace sequentially into a live daemon and print the same
//       summary/fingerprint — run both modes and diff the fingerprints to
//       check decision-identity between simulator and daemon.
//       With --paced, honour the recorded inter-arrival deltas (deltaNanos)
//       instead of replaying as fast as the daemon answers; --pace-scale=X
//       multiplies the recorded gaps (0.5 = twice as fast, 2 = half speed).
//       Pacing follows an absolute schedule, so a slow response does not
//       push every later arrival out — bursts stay bursts.
//
//   --in=FILE --drive [--procs=P] [--shards=K] [--no-spill] [--gang]
//              [--queue=mutex|mpsc|steal]
//       Self-hosting verification: spins up a fresh in-process
//       NegotiationServer with the given sizing, replays the trace through a
//       real client connection, replays it again into a fresh in-process
//       arbitrator, and compares every NEGOTIATE decision field by field.
//       Exit 0 iff all decisions match.  --queue swaps the daemon's
//       server→shard handoff queues (qos/command_queue.h) — decisions must
//       be identical for every kind.
//
// Replay is sequential (one request at a time, trace order == arrivalSeq
// order), which makes the decision stream a pure function of the trace and
// the sizing — the property the scenario regression tier pins.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <unistd.h>

#include "common/flags.h"
#include "common/time.h"
#include "elastic/reshaper.h"
#include "qos/sharded.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/wiretrace.h"
#include "workload/scenario.h"

namespace {

using namespace tprm;

/// One NEGOTIATE outcome in a form shared by every replay backend.
struct Decision {
  std::uint64_t traceSeq = 0;  // record's arrivalSeq (trace order)
  bool admitted = false;
  std::uint64_t jobId = 0;
  std::size_t chainIndex = 0;
  double quality = 0.0;
  Time release = 0;
};

/// One arbitrator-initiated quality move (elastic mode), normalized from
/// either qos::QualityMove (in-process) or service::ReshapeEvent (daemon).
struct Move {
  std::uint64_t jobId = 0;
  bool promotion = false;
  std::size_t fromChain = 0;
  std::size_t toChain = 0;
  double fromQuality = 0.0;
  double toQuality = 0.0;
};

struct ReplaySummary {
  std::uint64_t records = 0;
  std::uint64_t negotiates = 0;
  std::uint64_t cancels = 0;
  std::uint64_t other = 0;
  std::vector<Decision> decisions;
  std::vector<Move> moves;  // elastic mode only; trace order
};

void hashU64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
}

void hashDouble(std::uint64_t& h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  hashU64(h, bits);
}

std::uint64_t decisionFingerprint(const ReplaySummary& summary) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& d : summary.decisions) {
    hashU64(h, d.traceSeq);
    hashU64(h, d.admitted ? 1 : 0);
    hashU64(h, d.jobId);
    hashU64(h, d.chainIndex);
    hashDouble(h, d.quality);
    hashU64(h, static_cast<std::uint64_t>(d.release));
  }
  for (const auto& m : summary.moves) {
    hashU64(h, m.jobId);
    hashU64(h, m.promotion ? 1 : 0);
    hashU64(h, m.fromChain);
    hashU64(h, m.toChain);
    hashDouble(h, m.fromQuality);
    hashDouble(h, m.toQuality);
  }
  return h;
}

void appendMoves(ReplaySummary& summary,
                 const std::vector<qos::QualityMove>& moves) {
  for (const auto& move : moves) {
    summary.moves.push_back({move.jobId, move.promotion, move.fromChain,
                             move.toChain, move.fromQuality, move.toQuality});
  }
}

/// Decodes every record payload up front; exits the process on the first
/// malformed record (a damaged trace must never half-replay silently).
std::vector<service::Request> decodeAll(
    const std::vector<service::WireTraceRecord>& records) {
  std::vector<service::Request> requests;
  requests.reserve(records.size());
  for (const auto& record : records) {
    auto parsed = service::decodeRequest(record.payload);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "tprm_replay: record seq=%" PRIu64 " undecodable: %s\n",
                   record.arrivalSeq, parsed.error.c_str());
      std::exit(1);
    }
    requests.push_back(std::move(*parsed.request));
  }
  return requests;
}

qos::ShardedOptions shardedOptions(int shards, bool spill, bool gang) {
  qos::ShardedOptions options;
  options.shards = shards;
  options.spill = spill;
  options.gang = gang;
  return options;
}

/// Sequential replay into a fresh in-process sharded arbitrator.  NEGOTIATE
/// reserves the next global job id exactly as the server does at enqueue, so
/// ids (and home shards) line up with a recorded daemon run.
ReplaySummary replayInProcess(
    const std::vector<service::WireTraceRecord>& records, int processors,
    int shards, bool spill, bool gang, const qos::ReshapePolicy* policy) {
  const auto requests = decodeAll(records);
  qos::ShardedArbitrator arbitrator(processors,
                                    shardedOptions(shards, spill, gang));
  if (policy != nullptr) arbitrator.attachReshapePolicy(policy);
  ReplaySummary summary;
  std::vector<qos::QualityMove> moves;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& request = requests[i];
    ++summary.records;
    switch (request.command) {
      case service::Command::Negotiate: {
        const auto& payload =
            std::get<service::NegotiateRequest>(request.payload);
        ++summary.negotiates;
        const std::uint64_t jobId = arbitrator.reserveJobId();
        Time effective = payload.release;
        moves.clear();
        const auto outcome =
            arbitrator.submit(jobId, payload.spec, payload.release, &effective,
                              policy != nullptr ? &moves : nullptr);
        appendMoves(summary, moves);
        Decision decision;
        decision.traceSeq = records[i].arrivalSeq;
        decision.admitted = outcome.admitted;
        decision.jobId = jobId;
        decision.release = effective;
        if (outcome.admitted) {
          decision.chainIndex = outcome.schedule.chainIndex;
          decision.quality = outcome.quality;
        }
        summary.decisions.push_back(decision);
        break;
      }
      case service::Command::Cancel: {
        ++summary.cancels;
        moves.clear();
        (void)arbitrator.cancel(
            std::get<service::CancelRequest>(request.payload).jobId,
            policy != nullptr ? &moves : nullptr);
        appendMoves(summary, moves);
        break;
      }
      case service::Command::Resize: {
        ++summary.other;
        const auto& payload =
            std::get<service::ResizeRequest>(request.payload);
        if (payload.processors >= arbitrator.shardCount()) {
          (void)arbitrator.resize(payload.processors,
                                  std::max(payload.when, arbitrator.clock()));
        }
        break;
      }
      case service::Command::Stats:
      case service::Command::Verify:
      case service::Command::Hello:
      case service::Command::Reshapes:
        ++summary.other;  // read-only / handshake: no effect on decisions
        break;
    }
  }
  return summary;
}

/// Sequential replay through a live daemon connection.  When `paced`, each
/// record is released at startTime + paceScale * (cumulative deltaNanos) —
/// an absolute schedule, so response latency never dilates the recorded
/// arrival process.
ReplaySummary replayIntoDaemon(
    const std::vector<service::WireTraceRecord>& records,
    const service::ClientConfig& config, bool paced = false,
    double paceScale = 1.0, bool pollReshapes = false) {
  const auto requests = decodeAll(records);
  service::QoSAgentClient client(config);
  if (auto error = client.connect()) {
    std::fprintf(stderr, "tprm_replay: connect failed: %s\n",
                 error->message.c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  double dueNanos = 0.0;
  ReplaySummary summary;
  // Elastic daemons buffer this connection's reshape events server-side (v1
  // wire protocol); polling after every mutation keeps the collected move
  // stream in trace order.  Buffering happens before the mutation's own
  // response is flushed, so a sequential poll can never miss a move.
  const auto drainReshapes = [&] {
    if (!pollReshapes) return;
    const auto events = client.reshapes();
    if (!events.ok()) {
      std::fprintf(stderr, "tprm_replay: RESHAPES failed: %s\n",
                   events.error.message.c_str());
      std::exit(1);
    }
    for (const auto& event : events->events) {
      summary.moves.push_back({event.jobId, event.promotion, event.fromChain,
                               event.toChain, event.fromQuality,
                               event.toQuality});
    }
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& request = requests[i];
    if (paced) {
      dueNanos += paceScale * static_cast<double>(records[i].deltaNanos);
      const auto due =
          start + std::chrono::nanoseconds(static_cast<std::int64_t>(dueNanos));
      if (due > std::chrono::steady_clock::now()) {
        std::this_thread::sleep_until(due);
      }
    }
    ++summary.records;
    switch (request.command) {
      case service::Command::Negotiate: {
        const auto& payload =
            std::get<service::NegotiateRequest>(request.payload);
        ++summary.negotiates;
        const auto result = client.negotiate(payload.spec, payload.release);
        if (!result.ok()) {
          std::fprintf(stderr, "tprm_replay: NEGOTIATE failed: %s\n",
                       result.error.message.c_str());
          std::exit(1);
        }
        Decision decision;
        decision.traceSeq = records[i].arrivalSeq;
        decision.admitted = result->admitted;
        decision.jobId = result->jobId;
        decision.chainIndex = result->chainIndex;
        decision.quality = result->quality;
        decision.release = result->release;
        summary.decisions.push_back(decision);
        drainReshapes();
        break;
      }
      case service::Command::Cancel: {
        ++summary.cancels;
        const auto result = client.cancel(
            std::get<service::CancelRequest>(request.payload).jobId);
        if (!result.ok()) {
          std::fprintf(stderr, "tprm_replay: CANCEL failed: %s\n",
                       result.error.message.c_str());
          std::exit(1);
        }
        drainReshapes();
        break;
      }
      case service::Command::Resize: {
        ++summary.other;
        const auto& payload =
            std::get<service::ResizeRequest>(request.payload);
        const auto result = client.resize(payload.processors, payload.when);
        if (!result.ok() &&
            result.error.status != service::ClientStatus::ServerError) {
          std::fprintf(stderr, "tprm_replay: RESIZE failed: %s\n",
                       result.error.message.c_str());
          std::exit(1);
        }
        break;
      }
      case service::Command::Stats:
      case service::Command::Verify:
      case service::Command::Hello:
      case service::Command::Reshapes:
        ++summary.other;  // the blocking client handshakes on its own
        break;
    }
  }
  return summary;
}

void printSummary(const char* label, const ReplaySummary& summary) {
  std::printf(
      "%s: records=%" PRIu64 " negotiates=%" PRIu64 " cancels=%" PRIu64
      " other=%" PRIu64 "\n",
      label, summary.records, summary.negotiates, summary.cancels,
      summary.other);
  std::uint64_t admitted = 0;
  for (const auto& d : summary.decisions) admitted += d.admitted ? 1 : 0;
  std::printf("%s: admitted=%" PRIu64 " rejected=%zu\n", label, admitted,
              summary.decisions.size() - admitted);
  if (!summary.moves.empty()) {
    std::uint64_t promotions = 0;
    for (const auto& m : summary.moves) promotions += m.promotion ? 1 : 0;
    std::printf("%s: reshapes=%zu (demotions=%zu promotions=%" PRIu64 ")\n",
                label, summary.moves.size(),
                summary.moves.size() - promotions, promotions);
  }
  std::printf("%s: decision_fingerprint=%016" PRIx64 "\n", label,
              decisionFingerprint(summary));
}

bool decisionsMatch(const ReplaySummary& a, const ReplaySummary& b) {
  if (a.decisions.size() != b.decisions.size()) {
    std::fprintf(stderr, "mismatch: %zu vs %zu decisions\n",
                 a.decisions.size(), b.decisions.size());
    return false;
  }
  bool ok = true;
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    const auto& x = a.decisions[i];
    const auto& y = b.decisions[i];
    if (x.admitted != y.admitted || x.jobId != y.jobId ||
        x.chainIndex != y.chainIndex || x.quality != y.quality ||
        x.release != y.release) {
      std::fprintf(stderr,
                   "mismatch at negotiate #%zu (seq=%" PRIu64
                   "): admitted %d/%d jobId %" PRIu64 "/%" PRIu64
                   " chain %zu/%zu quality %.17g/%.17g\n",
                   i, x.traceSeq, x.admitted ? 1 : 0, y.admitted ? 1 : 0,
                   x.jobId, y.jobId, x.chainIndex, y.chainIndex, x.quality,
                   y.quality);
      ok = false;
    }
  }
  if (a.moves.size() != b.moves.size()) {
    std::fprintf(stderr, "mismatch: %zu vs %zu reshape moves\n",
                 a.moves.size(), b.moves.size());
    return false;
  }
  for (std::size_t i = 0; i < a.moves.size(); ++i) {
    const auto& x = a.moves[i];
    const auto& y = b.moves[i];
    if (x.jobId != y.jobId || x.promotion != y.promotion ||
        x.fromChain != y.fromChain || x.toChain != y.toChain ||
        x.fromQuality != y.fromQuality || x.toQuality != y.toQuality) {
      std::fprintf(stderr,
                   "mismatch at reshape #%zu: jobId %" PRIu64 "/%" PRIu64
                   " promotion %d/%d chain %zu->%zu vs %zu->%zu quality "
                   "%.17g->%.17g vs %.17g->%.17g\n",
                   i, x.jobId, y.jobId, x.promotion ? 1 : 0,
                   y.promotion ? 1 : 0, x.fromChain, x.toChain, y.fromChain,
                   y.toChain, x.fromQuality, x.toQuality, y.fromQuality,
                   y.toQuality);
      ok = false;
    }
  }
  return ok;
}

int generateTrace(const std::string& name, const std::string& outPath,
                  std::uint64_t seed, std::size_t jobs) {
  const auto params = workload::scenarioByName(name, seed, jobs);
  if (!params.has_value()) {
    std::fprintf(stderr, "tprm_replay: unknown scenario '%s' (known:",
                 name.c_str());
    for (const auto& known : workload::scenarioNames()) {
      std::fprintf(stderr, " %s", known.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }
  const auto scenario = workload::ScenarioGenerator(*params).generate();
  service::WireTraceWriter writer;
  std::string error;
  if (!writer.open(outPath, &error)) {
    std::fprintf(stderr, "tprm_replay: %s\n", error.c_str());
    return 1;
  }
  Time previous = 0;
  for (std::size_t i = 0; i < scenario.jobs.size(); ++i) {
    const auto& job = scenario.jobs[i];
    service::Request request;
    request.id = i + 1;
    request.command = service::Command::Negotiate;
    request.payload = service::NegotiateRequest{job.spec, job.release};
    service::WireTraceRecord record;
    record.arrivalSeq = i;
    // Pacing metadata: one simulated tick = one nanosecond of spacing.
    record.deltaNanos =
        i == 0 ? 0 : static_cast<std::uint64_t>(job.release - previous);
    previous = job.release;
    record.payload = service::encodeRequest(request);
    if (!writer.append(record, &error)) {
      std::fprintf(stderr, "tprm_replay: %s\n", error.c_str());
      return 1;
    }
  }
  if (!writer.close(&error)) {
    std::fprintf(stderr, "tprm_replay: %s\n", error.c_str());
    return 1;
  }
  std::printf("tprm_replay: wrote %zu records (%s, seed=%" PRIu64 ") to %s\n",
              scenario.jobs.size(), workload::toString(params->kind).c_str(),
              seed, outPath.c_str());
  return 0;
}

int catTrace(const std::vector<service::WireTraceRecord>& records) {
  for (const auto& record : records) {
    const auto parsed = service::decodeRequest(record.payload);
    std::printf("seq=%" PRIu64 " delta_ns=%" PRIu64 " bytes=%zu %s\n",
                record.arrivalSeq, record.deltaNanos, record.payload.size(),
                parsed.ok() ? service::toString(parsed.request->command)
                            : "<undecodable>");
  }
  return 0;
}

std::vector<service::WireTraceRecord> loadOrDie(const std::string& path) {
  auto loaded = service::loadWireTrace(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "tprm_replay: %s: %s (%s after %zu records)\n",
                 path.c_str(), loaded.message.c_str(),
                 service::toString(loaded.status), loaded.records.size());
    std::exit(1);
  }
  return std::move(loaded.records);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto unknown = flags.unknownAgainst(
      {"in", "out", "gen", "jobs", "seed", "procs", "shards", "no-spill",
       "gang", "unix", "tcp-port", "drive", "cat", "paced", "pace-scale",
       "elastic", "queue"});
  if (!unknown.empty()) {
    std::fprintf(stderr, "tprm_replay: unknown flag --%s\n",
                 unknown.front().c_str());
    return 2;
  }

  const std::string gen = flags.getString("gen", "");
  if (!gen.empty()) {
    const std::string out = flags.getString("out", "");
    if (out.empty()) {
      std::fprintf(stderr, "tprm_replay: --gen requires --out=FILE\n");
      return 2;
    }
    return generateTrace(
        gen, out, static_cast<std::uint64_t>(flags.getInt("seed", 1)),
        static_cast<std::size_t>(flags.getInt("jobs", 500)));
  }

  const std::string in = flags.getString("in", "");
  if (in.empty()) {
    std::fprintf(stderr,
                 "usage: tprm_replay --gen=NAME --out=FILE [--jobs --seed]\n"
                 "       tprm_replay --in=FILE --cat\n"
                 "       tprm_replay --in=FILE [--procs --shards --no-spill --gang]\n"
                 "       tprm_replay --in=FILE --unix=PATH | --tcp-port=PORT\n"
                 "                   [--paced [--pace-scale=X]]\n"
                 "       tprm_replay --in=FILE --drive [--procs --shards]\n");
    return 2;
  }
  const auto records = loadOrDie(in);
  if (flags.getBool("cat", false)) return catTrace(records);

  const int processors = static_cast<int>(flags.getInt("procs", 32));
  const int shards = static_cast<int>(flags.getInt("shards", 1));
  const bool spill = !flags.getBool("no-spill", false);
  const bool gang = flags.getBool("gang", false);
  if (shards < 1 || shards > processors) {
    std::fprintf(stderr, "tprm_replay: --shards must be in [1, --procs]\n");
    return 2;
  }

  const bool paced = flags.getBool("paced", false);
  const double paceScale = flags.getDouble("pace-scale", 1.0);
  if (paceScale <= 0.0) {
    std::fprintf(stderr, "tprm_replay: --pace-scale must be > 0\n");
    return 2;
  }

  std::optional<elastic::Reshaper> reshaper;
  if (flags.has("elastic")) {
    const std::string policyName = flags.getString("elastic", "");
    auto policy = elastic::VictimPolicy::MinQualityLoss;
    if (policyName != "true") {  // bare --elastic parses as "true"
      const auto parsed = elastic::victimPolicyFromName(policyName);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "tprm_replay: --elastic=%s is not a policy (want "
                     "min-quality-loss | most-recent-first | "
                     "proportional-share)\n",
                     policyName.c_str());
        return 2;
      }
      policy = *parsed;
    }
    reshaper.emplace(policy);
  }
  const qos::ReshapePolicy* reshapePolicy =
      reshaper.has_value() ? &*reshaper : nullptr;
  // --queue selects the driven daemon's handoff queue implementation; the
  // in-process replay has no queues, so decision identity across kinds is
  // exactly what this flag lets the gates check.
  auto queueKind = qos::QueueKind::Mutex;
  if (flags.has("queue")) {
    const std::string queueName = flags.getString("queue", "mutex");
    const auto parsedKind = qos::queueKindFromName(queueName);
    if (!parsedKind.has_value()) {
      std::fprintf(stderr,
                   "tprm_replay: --queue=%s is not a queue kind (want "
                   "mutex | mpsc | steal)\n",
                   queueName.c_str());
      return 2;
    }
    queueKind = *parsedKind;
  }

  const std::string unixPath = flags.getString("unix", "");
  const bool haveTcp = flags.has("tcp-port");
  if (!unixPath.empty() || haveTcp) {
    service::ClientConfig client;
    client.unixPath = unixPath;
    if (haveTcp) {
      client.tcpPort =
          static_cast<std::uint16_t>(flags.getInt("tcp-port", 0));
    }
    const auto summary = replayIntoDaemon(records, client, paced, paceScale,
                                          reshaper.has_value());
    printSummary("daemon", summary);
    return 0;
  }

  if (flags.getBool("drive", false)) {
    // Self-hosting verification: a fresh daemon and a fresh in-process
    // arbitrator replay the same trace sequentially; decisions must agree.
    service::ServerConfig config;
    config.processors = processors;
    config.shards = shards;
    config.shardSpill = spill;
    config.shardGang = gang;
    config.queueKind = queueKind;
    config.reshapePolicy = reshapePolicy;
    config.unixPath =
        "/tmp/tprm_replay_" + std::to_string(::getpid()) + ".sock";
    service::NegotiationServer server(config);
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "tprm_replay: server start failed: %s\n",
                   error.c_str());
      return 1;
    }
    service::ClientConfig client;
    client.unixPath = config.unixPath;
    const auto viaDaemon =
        replayIntoDaemon(records, client, false, 1.0, reshaper.has_value());
    server.stop();
    const auto viaSim =
        replayInProcess(records, processors, shards, spill, gang,
                        reshapePolicy);
    printSummary("daemon", viaDaemon);
    printSummary("sim", viaSim);
    if (!decisionsMatch(viaSim, viaDaemon)) {
      std::fprintf(stderr, "tprm_replay: DECISIONS DIVERGED\n");
      return 1;
    }
    std::printf("tprm_replay: decisions identical (%zu negotiations)\n",
                viaSim.decisions.size());
    return 0;
  }

  const auto summary =
      replayInProcess(records, processors, shards, spill, gang, reshapePolicy);
  printSummary("sim", summary);
  return 0;
}
